//! Filtered depth-limited search (FDLS) for subgraph embedding.
//!
//! Exhaustive VF2 enumeration ([`crate::vf2`]) is exact but explodes on the
//! 27/65/127-qubit heavy-hex presets: their long degree-2 chains admit
//! astronomically many embeddings of even a small footprint. Following the
//! approach of Li, Zhou & Feng (*Qubit Mapping Based on Subgraph
//! Isomorphism and Filtered Depth-Limited Search*), this module keeps the
//! search useful at that scale with three mechanisms:
//!
//! 1. **Candidate filtering** — each pattern vertex is restricted up front
//!    to target qubits whose degree *and* sorted neighbor-degree signature
//!    dominate the pattern vertex's, pruning hopeless branches before the
//!    search starts.
//! 2. **Depth-limited backtracking** — under one root placement, once the
//!    search retreats more than [`FdlsConfig::backtrack_depth`] levels below
//!    the deepest point it reached, the root is abandoned: near-duplicate
//!    local permutations are skipped in favor of the next root, which
//!    spreads the returned embeddings across the device — exactly the
//!    footprint diversity EDM's top-K selection wants.
//! 3. **Node-expansion budgets** — a global [`FdlsConfig::node_budget`] and
//!    a per-root [`FdlsConfig::root_budget`] bound the work regardless of
//!    how adversarial the instance is.
//!
//! Every early exit is reported through [`SearchOutcome::Truncated`];
//! [`FdlsConfig::exhaustive`] disables all three limits, making the search
//! provably equivalent to VF2 (the property tests assert set equality).
//!
//! The search is deterministic: matching order is the same as VF2's, roots
//! and candidates are visited in ascending target-qubit id, and no
//! randomness is involved — the same inputs always produce the same
//! embedding sequence.
//!
//! # Examples
//!
//! ```
//! use qdevice::{fdls, presets};
//! // A 10-qubit path footprint on the 127-qubit Eagle lattice: exhaustive
//! // enumeration would be enormous; FDLS returns a budgeted, diverse set.
//! let pattern = presets::line(10);
//! let target = presets::eagle127();
//! let set = fdls::search(&pattern, &target, 64, &fdls::FdlsConfig::default());
//! assert!(set.embeddings.len() >= 5);
//! ```

use crate::mapper::{EmbeddingSet, SearchOutcome};
use crate::{vf2, Topology};

/// Budgets for one filtered depth-limited search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdlsConfig {
    /// Total search-tree node expansions before the search stops (and
    /// reports [`SearchOutcome::Truncated`]).
    pub node_budget: u64,
    /// Node expansions under a single root placement before rotating to
    /// the next root.
    pub root_budget: u64,
    /// How many levels the search may retreat below the deepest point
    /// reached under a root before that root is abandoned.
    pub backtrack_depth: u32,
}

impl Default for FdlsConfig {
    /// Budgets sized for interactive use on a 127-qubit device: a couple
    /// hundred thousand expansions total, ten thousand per root — enough
    /// for dozens of distinct roots to contribute embeddings.
    fn default() -> Self {
        FdlsConfig {
            node_budget: 200_000,
            root_budget: 10_000,
            backtrack_depth: 8,
        }
    }
}

impl FdlsConfig {
    /// No budgets at all: the search visits the entire tree and is then
    /// equivalent to exhaustive VF2 (same embedding set, possibly in a
    /// different order).
    pub fn exhaustive() -> Self {
        FdlsConfig {
            node_budget: u64::MAX,
            root_budget: u64::MAX,
            backtrack_depth: u32::MAX,
        }
    }
}

/// Enumerates embeddings of `pattern` into `target` under `config`,
/// returning at most `max_results` of them.
///
/// Semantics match [`crate::vf2::enumerate`]: injective, non-induced (every
/// pattern edge maps to a target edge; extra target edges are fine),
/// isolated pattern vertices land on any unused target qubit, and an empty
/// pattern yields one empty embedding.
pub fn search(
    pattern: &Topology,
    target: &Topology,
    max_results: usize,
    config: &FdlsConfig,
) -> EmbeddingSet {
    let _span = edm_telemetry::trace::span("fdls_search");
    let set = edm_telemetry::histogram!(
        "edm_qdevice_fdls_us",
        "Wall time of one FDLS embedding search"
    )
    .time(|| search_inner(pattern, target, max_results, config));
    edm_telemetry::counter!(
        "edm_qdevice_fdls_embeddings_total",
        "Embeddings produced by FDLS searches"
    )
    .add(set.embeddings.len() as u64);
    if !set.is_complete() {
        edm_telemetry::counter!(
            "edm_qdevice_fdls_truncated_total",
            "FDLS searches that stopped on a budget, cap, or backtrack limit"
        )
        .inc();
    }
    set
}

fn search_inner(
    pattern: &Topology,
    target: &Topology,
    max_results: usize,
    config: &FdlsConfig,
) -> EmbeddingSet {
    let pn = pattern.num_qubits() as usize;
    let tn = target.num_qubits() as usize;
    let complete = |embeddings: Vec<Vec<u32>>| EmbeddingSet {
        embeddings,
        outcome: SearchOutcome::Complete,
    };
    if pn == 0 {
        return if max_results > 0 {
            complete(vec![Vec::new()])
        } else {
            complete(Vec::new())
        };
    }
    if pn > tn {
        return complete(Vec::new());
    }

    // Stage 1: candidate filtering. A target qubit can host a pattern
    // vertex only if its neighbor-degree signature dominates the vertex's
    // (sorted greedy matching — necessary for any injective neighbor
    // assignment, and it subsumes the plain degree check).
    let p_sig = degree_signatures(pattern);
    let t_sig = degree_signatures(target);
    let mut cand_list: Vec<Vec<u32>> = Vec::with_capacity(pn);
    let mut cand_mask: Vec<Vec<bool>> = Vec::with_capacity(pn);
    for sig in p_sig.iter().take(pn) {
        let mut mask = vec![false; tn];
        let mut list = Vec::new();
        for t in 0..tn {
            if dominates(&t_sig[t], sig) {
                mask[t] = true;
                list.push(t as u32);
            }
        }
        if list.is_empty() {
            // Some pattern vertex has no viable host: no embedding exists,
            // and the filter proved it without any search.
            return complete(Vec::new());
        }
        cand_list.push(list);
        cand_mask.push(mask);
    }

    // Search one past the cap so an exactly-at-cap pool still reports
    // Complete (matching vf2::enumerate's cap-hit detection).
    let limit = max_results.saturating_add(1);
    let order = vf2::matching_order(pattern);
    let mut s = Search {
        pattern,
        target,
        order,
        cand_list,
        cand_mask,
        mapping: vec![u32::MAX; pn],
        used: vec![false; tn],
        results: Vec::new(),
        limit,
        expansions: 0,
        root_expansions: 0,
        deepest: 0,
        config: *config,
        stop: false,
        abandon: false,
        truncated: false,
    };

    let root_v = s.order[0];
    let roots = s.cand_list[root_v as usize].clone();
    for root in roots {
        if s.stop {
            break;
        }
        s.root_expansions = 0;
        s.deepest = 0;
        s.abandon = false;
        if !s.charge_expansion() {
            // Node budget exhausted stops the search; a 1-expansion root
            // budget merely rotates to the next root.
            if s.stop {
                break;
            }
            continue;
        }
        s.mapping[root_v as usize] = root;
        s.used[root as usize] = true;
        s.dfs(1);
        s.used[root as usize] = false;
        s.mapping[root_v as usize] = u32::MAX;
    }

    let mut embeddings = s.results;
    if embeddings.len() > max_results {
        embeddings.truncate(max_results);
        s.truncated = true;
    }
    EmbeddingSet {
        embeddings,
        outcome: if s.truncated {
            SearchOutcome::Truncated {
                explored: s.expansions,
            }
        } else {
            SearchOutcome::Complete
        },
    }
}

/// Per-vertex neighbor degrees, sorted descending.
fn degree_signatures(topo: &Topology) -> Vec<Vec<usize>> {
    (0..topo.num_qubits())
        .map(|v| {
            let mut sig: Vec<usize> = topo.neighbors(v).iter().map(|&u| topo.degree(u)).collect();
            sig.sort_unstable_by(|a, b| b.cmp(a));
            sig
        })
        .collect()
}

/// True when every pattern neighbor (by descending degree) can be assigned
/// a distinct target neighbor of at least its degree.
fn dominates(target_sig: &[usize], pattern_sig: &[usize]) -> bool {
    pattern_sig.len() <= target_sig.len() && pattern_sig.iter().zip(target_sig).all(|(p, t)| p <= t)
}

struct Search<'a> {
    pattern: &'a Topology,
    target: &'a Topology,
    order: Vec<u32>,
    cand_list: Vec<Vec<u32>>,
    cand_mask: Vec<Vec<bool>>,
    mapping: Vec<u32>,
    used: Vec<bool>,
    results: Vec<Vec<u32>>,
    limit: usize,
    expansions: u64,
    root_expansions: u64,
    deepest: usize,
    config: FdlsConfig,
    /// Global stop: node budget exhausted or result cap overflowed.
    stop: bool,
    /// Abandon the current root (root budget or backtrack limit).
    abandon: bool,
    truncated: bool,
}

impl Search<'_> {
    /// Counts one node expansion against both budgets. Returns false (and
    /// raises the corresponding flags) when a budget is exhausted.
    fn charge_expansion(&mut self) -> bool {
        self.expansions += 1;
        self.root_expansions += 1;
        if self.expansions >= self.config.node_budget {
            self.truncated = true;
            self.stop = true;
            return false;
        }
        if self.root_expansions >= self.config.root_budget {
            self.truncated = true;
            self.abandon = true;
            return false;
        }
        true
    }

    fn dfs(&mut self, depth: usize) {
        if depth == self.order.len() {
            self.results.push(self.mapping.clone());
            if self.results.len() >= self.limit {
                self.truncated = true;
                self.stop = true;
            }
            return;
        }
        self.deepest = self.deepest.max(depth);
        let v = self.order[depth];
        let mapped_neighbor = self
            .pattern
            .neighbors(v)
            .iter()
            .find(|&&u| self.mapping[u as usize] != u32::MAX)
            .copied();
        let candidates: Vec<u32> = match mapped_neighbor {
            Some(u) => self
                .target
                .neighbors(self.mapping[u as usize])
                .iter()
                .copied()
                .filter(|&t| !self.used[t as usize] && self.cand_mask[v as usize][t as usize])
                .collect(),
            None => self.cand_list[v as usize]
                .iter()
                .copied()
                .filter(|&t| !self.used[t as usize])
                .collect(),
        };
        'cand: for t in candidates {
            for &u in self.pattern.neighbors(v) {
                let img = self.mapping[u as usize];
                if img != u32::MAX && !self.target.has_edge(t, img) {
                    continue 'cand;
                }
            }
            if !self.charge_expansion() {
                return;
            }
            self.mapping[v as usize] = t;
            self.used[t as usize] = true;
            self.dfs(depth + 1);
            self.used[t as usize] = false;
            self.mapping[v as usize] = u32::MAX;
            if self.stop || self.abandon {
                return;
            }
            // Depth-limited backtracking: once the subtree below has been
            // and gone, retreating far below the deepest point means we'd
            // only re-enumerate local permutations — move to the next root.
            if (self.deepest - depth) as u64 > u64::from(self.config.backtrack_depth) {
                self.truncated = true;
                self.abandon = true;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn sorted(mut v: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        v.sort();
        v
    }

    fn check_valid(pattern: &Topology, target: &Topology, phi: &[u32]) {
        let mut seen = std::collections::BTreeSet::new();
        for &t in phi {
            assert!(seen.insert(t), "not injective: {phi:?}");
            assert!(t < target.num_qubits());
        }
        for e in pattern.edges() {
            assert!(
                target.has_edge(phi[e.lo() as usize], phi[e.hi() as usize]),
                "edge {e} not preserved by {phi:?}"
            );
        }
    }

    #[test]
    fn exhaustive_config_matches_vf2_on_small_targets() {
        let patterns = [
            presets::line(3),
            presets::line(5),
            presets::ring(4),
            Topology::new(4, &[(0, 1), (0, 2), (0, 3)]),
            Topology::new(3, &[(0, 1)]), // isolated vertex included
        ];
        let targets = [presets::melbourne14(), presets::guadalupe16()];
        for pattern in &patterns {
            for target in &targets {
                let a = vf2::enumerate(pattern, target, usize::MAX);
                let b = search(pattern, target, usize::MAX, &FdlsConfig::exhaustive());
                assert!(a.is_complete() && b.is_complete());
                assert_eq!(sorted(a.embeddings), sorted(b.embeddings));
            }
        }
    }

    #[test]
    fn eagle_search_is_budgeted_diverse_and_valid() {
        let pattern = presets::line(10);
        let target = presets::eagle127();
        let set = search(&pattern, &target, 256, &FdlsConfig::default());
        assert!(set.embeddings.len() >= 5, "only {}", set.embeddings.len());
        let mut distinct = std::collections::BTreeSet::new();
        for phi in &set.embeddings {
            check_valid(&pattern, &target, phi);
            assert!(distinct.insert(phi.clone()), "duplicate {phi:?}");
        }
        // Depth-limited root rotation must spread embeddings over more
        // than one footprint, not enumerate permutations of one corner.
        let footprints: std::collections::BTreeSet<Vec<u32>> = set
            .embeddings
            .iter()
            .map(|phi| {
                let mut f = phi.clone();
                f.sort_unstable();
                f
            })
            .collect();
        assert!(footprints.len() > 1, "all embeddings share one footprint");
    }

    #[test]
    fn node_budget_truncates_with_outcome() {
        let pattern = presets::line(4);
        let target = presets::tokyo20();
        let tiny = FdlsConfig {
            node_budget: 16,
            ..FdlsConfig::default()
        };
        let set = search(&pattern, &target, usize::MAX, &tiny);
        assert!(matches!(
            set.outcome,
            SearchOutcome::Truncated { explored } if explored <= 16
        ));
        // The full pool is strictly larger.
        let full = search(&pattern, &target, usize::MAX, &FdlsConfig::exhaustive());
        assert!(full.is_complete());
        assert!(set.embeddings.len() < full.embeddings.len());
    }

    #[test]
    fn result_cap_reports_truncation_only_when_hit() {
        let pattern = presets::line(3);
        let target = presets::line(4); // exactly 4 embeddings
        let exact = search(&pattern, &target, 4, &FdlsConfig::exhaustive());
        assert!(exact.is_complete());
        assert_eq!(exact.embeddings.len(), 4);
        let capped = search(&pattern, &target, 3, &FdlsConfig::exhaustive());
        assert!(!capped.is_complete());
        assert_eq!(capped.embeddings.len(), 3);
    }

    #[test]
    fn filtering_proves_unembeddable_without_searching() {
        // A 4-star needs a degree-3 hub with three degree->=1 neighbors;
        // a line's max degree is 2, so the candidate filter empties out.
        let star = Topology::new(4, &[(0, 1), (0, 2), (0, 3)]);
        let set = search(
            &star,
            &presets::line(10),
            usize::MAX,
            &FdlsConfig::default(),
        );
        assert!(set.is_complete());
        assert!(set.embeddings.is_empty());
    }

    #[test]
    fn empty_and_oversized_patterns_match_vf2_semantics() {
        let empty = Topology::new(0, &[]);
        let set = search(
            &empty,
            &presets::line(3),
            usize::MAX,
            &FdlsConfig::default(),
        );
        assert_eq!(set.embeddings, vec![Vec::<u32>::new()]);
        assert!(set.is_complete());
        let big = presets::line(5);
        let set = search(&big, &presets::line(4), usize::MAX, &FdlsConfig::default());
        assert!(set.embeddings.is_empty() && set.is_complete());
    }

    #[test]
    fn search_is_deterministic() {
        let pattern = presets::line(8);
        let target = presets::hummingbird65();
        let a = search(&pattern, &target, 64, &FdlsConfig::default());
        let b = search(&pattern, &target, 64, &FdlsConfig::default());
        assert_eq!(a, b);
    }
}
