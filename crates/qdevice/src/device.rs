//! Ground-truth device models with hidden correlated-error channels.
//!
//! A [`DeviceModel`] is the substitute for the paper's physical IBMQ-14
//! machine. It owns:
//!
//! - the stochastic error rates a real calibration would report
//!   ([`NoiseParams::cx_err`], readout, 1q-gate, T1/T2), and
//! - *hidden* deterministic channels that a calibration cannot see: per-edge
//!   coherent CX over-rotation and per-edge ZZ-crosstalk on spectator qubits,
//!   plus state-dependent readout asymmetry.
//!
//! The hidden channels are fixed per calibration cycle, so every shot of a
//! program mapped onto the same qubits suffers the *same* systematic tilt —
//! this is what makes a specific wrong answer dominate (the "demon" of the
//! paper's Appendix A). A different mapping touches different edges and
//! therefore tilts toward *different* wrong answers, which is exactly the
//! diversity EDM exploits.

use crate::stats;
use crate::topology::{Edge, Topology};
use crate::Calibration;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// Ground-truth error parameters of a synthetic device.
///
/// Fields are public because this is a passive parameter record consumed by
/// the simulator; invariants (rates in `[0,1]`) are enforced at synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseParams {
    /// P(read 1 | prepared 0) per qubit.
    pub readout_p01: Vec<f64>,
    /// P(read 0 | prepared 1) per qubit. Typically larger than `readout_p01`
    /// (state-dependent bias; see the paper's concurrent work on
    /// Invert-and-Measure).
    pub readout_p10: Vec<f64>,
    /// Depolarizing error probability per single-qubit gate, per qubit.
    pub gate_1q_err: Vec<f64>,
    /// Depolarizing error probability per CX, per coupling edge.
    pub cx_err: BTreeMap<Edge, f64>,
    /// Amplitude-damping time constant per qubit, microseconds.
    pub t1_us: Vec<f64>,
    /// Dephasing time constant per qubit, microseconds.
    pub t2_us: Vec<f64>,
    /// Duration of a single-qubit gate, microseconds.
    pub gate_time_1q_us: f64,
    /// Duration of a CX gate, microseconds.
    pub gate_time_2q_us: f64,
    /// Hidden systematic CX over-rotation angle per edge (radians). Applied
    /// coherently after every CX on that edge; invisible to calibration.
    pub coherent_cx_angle: BTreeMap<Edge, f64>,
    /// Hidden ZZ-crosstalk phase per edge (radians), applied to topology
    /// neighbors of the edge whenever a CX fires on it.
    pub zz_crosstalk: BTreeMap<Edge, f64>,
}

impl NoiseParams {
    /// Number of qubits the parameters cover.
    pub fn num_qubits(&self) -> u32 {
        self.readout_p01.len() as u32
    }

    /// The symmetric (reported) readout error of qubit `q`: the mean of the
    /// two conditional flip probabilities.
    pub fn readout_err(&self, q: u32) -> f64 {
        0.5 * (self.readout_p01[q as usize] + self.readout_p10[q as usize])
    }

    /// Returns a copy with every stochastic error rate and coherent angle
    /// multiplied by `factor` (clamped to valid ranges).
    ///
    /// Used by the Appendix-A style sweeps to move a device along the
    /// PST axis.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scaled(&self, factor: f64) -> NoiseParams {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "noise scale factor must be a non-negative finite number"
        );
        let scale =
            |v: &[f64]| -> Vec<f64> { v.iter().map(|&x| (x * factor).clamp(0.0, 0.5)).collect() };
        let scale_map = |m: &BTreeMap<Edge, f64>, hi: f64| -> BTreeMap<Edge, f64> {
            m.iter()
                .map(|(&e, &x)| (e, (x * factor).clamp(-hi, hi)))
                .collect()
        };
        NoiseParams {
            readout_p01: scale(&self.readout_p01),
            readout_p10: scale(&self.readout_p10),
            gate_1q_err: scale(&self.gate_1q_err),
            cx_err: scale_map(&self.cx_err, 0.5),
            t1_us: self.t1_us.clone(),
            t2_us: self.t2_us.clone(),
            gate_time_1q_us: self.gate_time_1q_us,
            gate_time_2q_us: self.gate_time_2q_us,
            coherent_cx_angle: scale_map(&self.coherent_cx_angle, std::f64::consts::PI),
            zz_crosstalk: scale_map(&self.zz_crosstalk, std::f64::consts::PI),
        }
    }

    /// A random-walk drift sequence: `steps` successive parameter sets,
    /// each drifted from the previous by [`NoiseParams::drifted`] with the
    /// given per-step sigma. Models the paper's observation (§2.4) that
    /// error rates wander between calibration cycles while relative qubit
    /// quality is "largely repeatable".
    pub fn drift_series(&self, steps: usize, sigma_per_step: f64, seed: u64) -> Vec<NoiseParams> {
        let mut out = Vec::with_capacity(steps);
        let mut current = self.clone();
        for i in 0..steps {
            current = current.drifted(sigma_per_step, seed.wrapping_add(i as u64));
            out.push(current.clone());
        }
        out
    }

    /// Returns a drifted copy: every stochastic rate is multiplied by an
    /// independent log-normal factor `exp(sigma * N(0,1))` and the hidden
    /// coherent angles receive small additive jitter.
    ///
    /// This models the temporal drift between the calibration cycle (which
    /// the compiler sees) and the actual run (which the program experiences),
    /// reproducing the imperfect ESP-to-PST correlation of Fig. 8.
    pub fn drifted(&self, sigma: f64, seed: u64) -> NoiseParams {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD51F7_u64);
        let drift = |rng: &mut ChaCha8Rng, v: &[f64]| -> Vec<f64> {
            v.iter()
                .map(|&x| {
                    let f = (sigma * stats::standard_normal(rng)).exp();
                    (x * f).clamp(0.0, 0.5)
                })
                .collect()
        };
        let drift_map = |rng: &mut ChaCha8Rng, m: &BTreeMap<Edge, f64>| -> BTreeMap<Edge, f64> {
            m.iter()
                .map(|(&e, &x)| {
                    let f = (sigma * stats::standard_normal(rng)).exp();
                    (e, (x * f).clamp(0.0, 0.5))
                })
                .collect()
        };
        let jitter_map = |rng: &mut ChaCha8Rng, m: &BTreeMap<Edge, f64>| -> BTreeMap<Edge, f64> {
            m.iter()
                .map(|(&e, &x)| (e, x + 0.3 * sigma * x.abs() * stats::standard_normal(rng)))
                .collect()
        };
        NoiseParams {
            readout_p01: drift(&mut rng, &self.readout_p01),
            readout_p10: drift(&mut rng, &self.readout_p10),
            gate_1q_err: drift(&mut rng, &self.gate_1q_err),
            cx_err: drift_map(&mut rng, &self.cx_err),
            t1_us: self.t1_us.clone(),
            t2_us: self.t2_us.clone(),
            gate_time_1q_us: self.gate_time_1q_us,
            gate_time_2q_us: self.gate_time_2q_us,
            coherent_cx_angle: jitter_map(&mut rng, &self.coherent_cx_angle),
            zz_crosstalk: jitter_map(&mut rng, &self.zz_crosstalk),
        }
    }
}

/// Knobs controlling how [`DeviceModel::synthesize_with`] samples a device.
///
/// Defaults reproduce the error magnitudes the paper reports for IBMQ-14:
/// ~8% average readout error with two very noisy qubits up to 30% (Q11/Q12),
/// ~4% average CX error with large (up to ~20x) link-to-link variation,
/// 0.1% single-qubit gate error, T1 ≈ 50 µs, T2 ≈ 30 µs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisProfile {
    /// Median of the per-qubit readout error distribution.
    pub readout_median: f64,
    /// Log-normal spread of readout errors.
    pub readout_sigma: f64,
    /// Ratio `p10 / p01`: how much more likely reading |1> fails than |0>.
    pub readout_asymmetry: f64,
    /// Number of designated "bad readout" qubits.
    pub num_bad_readout_qubits: usize,
    /// Readout error of the designated bad qubits.
    pub bad_readout_err: f64,
    /// Median single-qubit gate error.
    pub gate_1q_median: f64,
    /// Log-normal spread of single-qubit gate errors.
    pub gate_1q_sigma: f64,
    /// Median CX error.
    pub cx_median: f64,
    /// Log-normal spread of CX errors (0.8 gives ~20x link variation).
    pub cx_sigma: f64,
    /// Mean / sd of T1 in microseconds.
    pub t1_mean_us: f64,
    /// Standard deviation of T1.
    pub t1_sd_us: f64,
    /// Mean / sd of T2 in microseconds.
    pub t2_mean_us: f64,
    /// Standard deviation of T2.
    pub t2_sd_us: f64,
    /// Maximum magnitude of the hidden coherent CX over-rotation (radians).
    pub coherent_max_angle: f64,
    /// Maximum magnitude of the hidden ZZ-crosstalk phase (radians).
    pub crosstalk_max_angle: f64,
}

impl Default for SynthesisProfile {
    fn default() -> Self {
        SynthesisProfile {
            readout_median: 0.06,
            readout_sigma: 0.4,
            readout_asymmetry: 2.5,
            num_bad_readout_qubits: 2,
            bad_readout_err: 0.28,
            gate_1q_median: 0.001,
            gate_1q_sigma: 0.3,
            cx_median: 0.03,
            cx_sigma: 0.8,
            t1_mean_us: 50.0,
            t1_sd_us: 10.0,
            t2_mean_us: 30.0,
            t2_sd_us: 8.0,
            coherent_max_angle: 0.35,
            crosstalk_max_angle: 0.15,
        }
    }
}

/// A synthetic NISQ device: a topology plus ground-truth noise parameters.
///
/// # Examples
///
/// ```
/// use qdevice::{presets, DeviceModel};
/// let device = DeviceModel::synthesize(presets::melbourne14(), 1);
/// // The compiler view hides the coherent channels.
/// let cal = device.calibration();
/// assert_eq!(cal.num_qubits(), device.topology().num_qubits());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    topology: Topology,
    truth: NoiseParams,
}

impl DeviceModel {
    /// Synthesizes a device with the default (IBMQ-14-like) profile.
    pub fn synthesize(topology: Topology, seed: u64) -> Self {
        Self::synthesize_with(topology, &SynthesisProfile::default(), seed)
    }

    /// Synthesizes a device with a custom profile.
    pub fn synthesize_with(topology: Topology, profile: &SynthesisProfile, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = topology.num_qubits() as usize;

        let mut readout_total: Vec<f64> = (0..n)
            .map(|_| {
                stats::clamp_rate(
                    stats::lognormal(&mut rng, profile.readout_median, profile.readout_sigma),
                    0.005,
                    0.45,
                )
            })
            .collect();
        // Designate bad-readout qubits; on a 14-qubit melbourne-like device
        // these are Q11 and Q12 as the paper observed (footnote 3).
        let bad: Vec<usize> = if n >= 13 {
            vec![11, 12]
        } else {
            (n.saturating_sub(profile.num_bad_readout_qubits)..n).collect()
        };
        for &q in bad.iter().take(profile.num_bad_readout_qubits) {
            readout_total[q] = stats::clamp_rate(
                profile.bad_readout_err * (1.0 + 0.1 * stats::standard_normal(&mut rng)),
                0.15,
                0.45,
            );
        }
        // Split the total into asymmetric conditional flips with
        // p10 = asymmetry * p01 and (p01 + p10)/2 = total.
        let a = profile.readout_asymmetry;
        let readout_p01: Vec<f64> = readout_total.iter().map(|&t| 2.0 * t / (1.0 + a)).collect();
        let readout_p10: Vec<f64> = readout_p01.iter().map(|&p| (p * a).min(0.49)).collect();

        let gate_1q_err: Vec<f64> = (0..n)
            .map(|_| {
                stats::clamp_rate(
                    stats::lognormal(&mut rng, profile.gate_1q_median, profile.gate_1q_sigma),
                    1e-5,
                    0.05,
                )
            })
            .collect();

        let mut cx_err = BTreeMap::new();
        let mut coherent_cx_angle = BTreeMap::new();
        let mut zz_crosstalk = BTreeMap::new();
        for &e in topology.edges() {
            cx_err.insert(
                e,
                stats::clamp_rate(
                    stats::lognormal(&mut rng, profile.cx_median, profile.cx_sigma),
                    0.002,
                    0.35,
                ),
            );
            let angle = (2.0 * rng.gen::<f64>() - 1.0) * profile.coherent_max_angle;
            coherent_cx_angle.insert(e, angle);
            let xt = (2.0 * rng.gen::<f64>() - 1.0) * profile.crosstalk_max_angle;
            zz_crosstalk.insert(e, xt);
        }

        let t1_us: Vec<f64> = (0..n)
            .map(|_| stats::normal(&mut rng, profile.t1_mean_us, profile.t1_sd_us).max(5.0))
            .collect();
        let t2_us: Vec<f64> = (0..n)
            .map(|i| {
                stats::normal(&mut rng, profile.t2_mean_us, profile.t2_sd_us)
                    .max(2.0)
                    .min(2.0 * t1_us[i])
            })
            .collect();

        DeviceModel {
            topology,
            truth: NoiseParams {
                readout_p01,
                readout_p10,
                gate_1q_err,
                cx_err,
                t1_us,
                t2_us,
                gate_time_1q_us: 0.1,
                gate_time_2q_us: 0.3,
                coherent_cx_angle,
                zz_crosstalk,
            },
        }
    }

    /// Builds a device from explicit parameters (mainly for tests).
    ///
    /// # Panics
    ///
    /// Panics if the parameter vectors do not match the topology size.
    pub fn from_parts(topology: Topology, truth: NoiseParams) -> Self {
        assert_eq!(
            truth.num_qubits(),
            topology.num_qubits(),
            "noise parameters must cover every qubit"
        );
        DeviceModel { topology, truth }
    }

    /// The device's coupling graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The ground-truth noise parameters (what the simulator uses).
    pub fn truth(&self) -> &NoiseParams {
        &self.truth
    }

    /// The compiler-visible calibration: accurate stochastic rates, but no
    /// hidden coherent information.
    pub fn calibration(&self) -> Calibration {
        let n = self.truth.num_qubits();
        let readout: Vec<f64> = (0..n).map(|q| self.truth.readout_err(q)).collect();
        Calibration::new(
            readout,
            self.truth.gate_1q_err.clone(),
            self.truth.cx_err.clone(),
        )
    }

    /// A calibration measured `sigma` drift ago: the rates the compiler sees
    /// differ from the truth by log-normal drift factors.
    pub fn drifted_calibration(&self, sigma: f64, seed: u64) -> Calibration {
        let drifted = self.truth.drifted(sigma, seed);
        let n = drifted.num_qubits();
        let readout: Vec<f64> = (0..n).map(|q| drifted.readout_err(q)).collect();
        Calibration::new(readout, drifted.gate_1q_err.clone(), drifted.cx_err.clone())
    }

    /// Returns a copy whose truth is replaced by `truth` (e.g. a drifted or
    /// scaled variant).
    pub fn with_truth(&self, truth: NoiseParams) -> DeviceModel {
        DeviceModel::from_parts(self.topology.clone(), truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let t = presets::melbourne14();
        let a = DeviceModel::synthesize(t.clone(), 9);
        let b = DeviceModel::synthesize(t.clone(), 9);
        let c = DeviceModel::synthesize(t, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn melbourne_bad_qubits_are_11_and_12() {
        let d = DeviceModel::synthesize(presets::melbourne14(), 3);
        let cal = d.calibration();
        assert!(cal.readout_err(11) > 0.15);
        assert!(cal.readout_err(12) > 0.15);
        // Typical qubits are far better.
        let median = {
            let mut v: Vec<f64> = (0..14).map(|q| cal.readout_err(q)).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[7]
        };
        assert!(median < 0.15);
    }

    #[test]
    fn readout_is_asymmetric_toward_one_state() {
        let d = DeviceModel::synthesize(presets::melbourne14(), 5);
        let t = d.truth();
        for q in 0..14usize {
            assert!(
                t.readout_p10[q] > t.readout_p01[q],
                "qubit {q}: p10 {} should exceed p01 {}",
                t.readout_p10[q],
                t.readout_p01[q]
            );
        }
    }

    #[test]
    fn every_edge_has_cx_and_hidden_params() {
        let topo = presets::melbourne14();
        let d = DeviceModel::synthesize(topo.clone(), 1);
        for &e in topo.edges() {
            assert!(d.truth().cx_err.contains_key(&e));
            assert!(d.truth().coherent_cx_angle.contains_key(&e));
            assert!(d.truth().zz_crosstalk.contains_key(&e));
        }
    }

    #[test]
    fn cx_errors_show_large_variation() {
        // Aggregate across several devices: the paper reports up to ~20x.
        let mut max_spread: f64 = 0.0;
        for seed in 0..5 {
            let d = DeviceModel::synthesize(presets::melbourne14(), seed);
            max_spread = max_spread.max(d.calibration().cx_err_spread());
        }
        assert!(max_spread > 5.0, "spread {max_spread}");
    }

    #[test]
    fn t2_bounded_by_twice_t1() {
        let d = DeviceModel::synthesize(presets::melbourne14(), 8);
        for q in 0..14usize {
            assert!(d.truth().t2_us[q] <= 2.0 * d.truth().t1_us[q] + 1e-9);
            assert!(d.truth().t1_us[q] > 0.0);
        }
    }

    #[test]
    fn calibration_matches_truth_means() {
        let d = DeviceModel::synthesize(presets::melbourne14(), 2);
        let cal = d.calibration();
        for q in 0..14 {
            assert!((cal.readout_err(q) - d.truth().readout_err(q)).abs() < 1e-12);
        }
    }

    #[test]
    fn drifted_calibration_differs_but_correlates() {
        let d = DeviceModel::synthesize(presets::melbourne14(), 4);
        let cal = d.calibration();
        let drifted = d.drifted_calibration(0.3, 77);
        let mut any_diff = false;
        for q in 0..14 {
            if (cal.readout_err(q) - drifted.readout_err(q)).abs() > 1e-9 {
                any_diff = true;
            }
            // Drift is multiplicative, so ordering is roughly preserved:
            // drifted value stays within a couple of octaves.
            let ratio = drifted.readout_err(q) / cal.readout_err(q);
            assert!(ratio > 0.1 && ratio < 10.0, "ratio {ratio}");
        }
        assert!(any_diff);
    }

    #[test]
    fn scaled_zero_removes_stochastic_noise() {
        let d = DeviceModel::synthesize(presets::melbourne14(), 6);
        let z = d.truth().scaled(0.0);
        assert!(z.readout_p01.iter().all(|&x| x == 0.0));
        assert!(z.cx_err.values().all(|&x| x == 0.0));
        assert!(z.coherent_cx_angle.values().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn scaled_rejects_negative() {
        let d = DeviceModel::synthesize(presets::line(3), 0);
        let _ = d.truth().scaled(-1.0);
    }

    #[test]
    fn drift_is_deterministic_per_seed() {
        let d = DeviceModel::synthesize(presets::melbourne14(), 6);
        assert_eq!(d.truth().drifted(0.2, 1), d.truth().drifted(0.2, 1));
        assert_ne!(d.truth().drifted(0.2, 1), d.truth().drifted(0.2, 2));
    }

    #[test]
    #[should_panic(expected = "cover every qubit")]
    fn from_parts_validates_sizes() {
        let d = DeviceModel::synthesize(presets::line(3), 0);
        let truth = d.truth().clone();
        let _ = DeviceModel::from_parts(presets::line(4), truth);
    }
}

#[cfg(test)]
mod drift_series_tests {
    use super::*;
    use crate::presets;

    #[test]
    fn drift_series_has_requested_length_and_wanders() {
        let d = DeviceModel::synthesize(presets::melbourne14(), 3);
        let series = d.truth().drift_series(5, 0.1, 7);
        assert_eq!(series.len(), 5);
        // Consecutive steps differ but stay valid.
        for w in series.windows(2) {
            assert_ne!(w[0], w[1]);
        }
        for params in &series {
            assert!(params.readout_p01.iter().all(|&x| (0.0..=0.5).contains(&x)));
        }
        // Deterministic.
        assert_eq!(series, d.truth().drift_series(5, 0.1, 7));
    }

    #[test]
    fn drift_series_preserves_relative_quality_roughly() {
        // §2.4: relative reliability is largely repeatable. The best and
        // worst readout qubits should mostly stay in the same half.
        let d = DeviceModel::synthesize(presets::melbourne14(), 5);
        let base = d.truth();
        let worst = (0..14u32)
            .max_by(|&a, &b| {
                base.readout_err(a)
                    .partial_cmp(&base.readout_err(b))
                    .unwrap()
            })
            .unwrap();
        let series = base.drift_series(4, 0.1, 11);
        for params in &series {
            let rank = (0..14u32)
                .filter(|&q| params.readout_err(q) > params.readout_err(worst))
                .count();
            assert!(rank <= 3, "worst qubit drifted into the good half");
        }
    }
}
