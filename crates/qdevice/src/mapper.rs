//! Mapper selection: one front door over the two embedding engines.
//!
//! EDM needs *many* embeddings of a circuit footprint into the coupling
//! graph. Two engines produce them:
//!
//! - [`crate::vf2`] — exhaustive VF2 enumeration; exact, but intractable on
//!   the 27/65/127-qubit heavy-hex presets where sparse degree-2 chains make
//!   the embedding count explode,
//! - [`crate::fdls`] — filtered depth-limited search (after Li, Zhou &
//!   Feng); budgeted, deterministic, and spread across root placements so
//!   the diverse top-K structure EDM relies on survives truncation.
//!
//! [`MapperSelection`] names the choice, with an [`MapperSelection::Auto`]
//! mode that keeps small devices on the exhaustive engine (bit-identical to
//! the pre-FDLS behavior) and switches large ones to the filtered engine.
//! Both report an explicit [`SearchOutcome`] instead of a silently capped
//! `Vec`, so ESP rankings downstream know whether they saw the whole pool.

use crate::fdls::{self, FdlsConfig};
use crate::{vf2, Topology};

/// Devices at or below this qubit count stay on exhaustive VF2 under
/// [`MapperSelection::Auto`] — up to tokyo-20, where full enumeration is
/// affordable and the paper's methodology applies unchanged.
pub const AUTO_EXHAUSTIVE_MAX_QUBITS: u32 = 20;

/// Whether an embedding search saw the whole space or was cut short.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchOutcome {
    /// Every embedding (up to the caller's result cap, which was not hit)
    /// was enumerated: the returned set is the full pool.
    Complete,
    /// The search stopped early — result cap, node-expansion budget, or
    /// backtrack-depth abandonment — so embeddings may be missing and any
    /// ranking over the set is best-effort.
    Truncated {
        /// Search-tree nodes expanded before stopping.
        explored: u64,
    },
}

/// The embeddings a search produced, plus how it ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbeddingSet {
    /// Injective pattern-to-target assignments, one `Vec` per embedding,
    /// indexed by pattern vertex.
    pub embeddings: Vec<Vec<u32>>,
    /// Whether the set above is the whole pool.
    pub outcome: SearchOutcome,
}

impl EmbeddingSet {
    /// True when the search enumerated the entire embedding space.
    pub fn is_complete(&self) -> bool {
        matches!(self.outcome, SearchOutcome::Complete)
    }
}

/// Which embedding engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MapperSelection {
    /// Exhaustive VF2 for targets up to [`AUTO_EXHAUSTIVE_MAX_QUBITS`]
    /// qubits, filtered depth-limited search (default budgets) above.
    #[default]
    Auto,
    /// Always exhaustive VF2, whatever the device size.
    Exhaustive,
    /// Always the filtered depth-limited search with these budgets.
    Filtered(FdlsConfig),
}

impl MapperSelection {
    /// Resolves [`MapperSelection::Auto`] against a concrete target device;
    /// the other variants return themselves.
    pub fn resolve(self, target: &Topology) -> MapperSelection {
        match self {
            MapperSelection::Auto if target.num_qubits() <= AUTO_EXHAUSTIVE_MAX_QUBITS => {
                MapperSelection::Exhaustive
            }
            MapperSelection::Auto => MapperSelection::Filtered(FdlsConfig::default()),
            other => other,
        }
    }

    /// Parses the CLI spelling: `auto`, `exhaustive`/`vf2`, or
    /// `filtered`/`fdls`.
    pub fn parse(name: &str) -> Option<MapperSelection> {
        match name {
            "auto" => Some(MapperSelection::Auto),
            "exhaustive" | "vf2" => Some(MapperSelection::Exhaustive),
            "filtered" | "fdls" => Some(MapperSelection::Filtered(FdlsConfig::default())),
            _ => None,
        }
    }

    /// The short name of the engine this selection resolves to on `target`.
    pub fn describe(self, target: &Topology) -> &'static str {
        match self.resolve(target) {
            MapperSelection::Exhaustive => "exhaustive",
            MapperSelection::Filtered(_) => "filtered",
            MapperSelection::Auto => unreachable!("resolve never returns Auto"),
        }
    }
}

/// Enumerates embeddings of `pattern` into `target` with the selected
/// engine, returning at most `max_results` of them plus the search outcome.
///
/// Both engines are deterministic (fixed matching order, candidates in
/// ascending target-qubit id), so the same inputs always yield the same
/// embedding sequence.
pub fn enumerate_embeddings(
    pattern: &Topology,
    target: &Topology,
    max_results: usize,
    selection: MapperSelection,
) -> EmbeddingSet {
    match selection.resolve(target) {
        MapperSelection::Exhaustive => vf2::enumerate(pattern, target, max_results),
        MapperSelection::Filtered(config) => fdls::search(pattern, target, max_results, &config),
        MapperSelection::Auto => unreachable!("resolve never returns Auto"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn auto_resolves_by_device_size() {
        let small = presets::tokyo20();
        let large = presets::falcon27();
        assert_eq!(
            MapperSelection::Auto.resolve(&small),
            MapperSelection::Exhaustive
        );
        assert!(matches!(
            MapperSelection::Auto.resolve(&large),
            MapperSelection::Filtered(_)
        ));
        assert_eq!(MapperSelection::Auto.describe(&small), "exhaustive");
        assert_eq!(MapperSelection::Auto.describe(&large), "filtered");
    }

    #[test]
    fn parse_accepts_both_spellings() {
        assert_eq!(MapperSelection::parse("auto"), Some(MapperSelection::Auto));
        assert_eq!(
            MapperSelection::parse("vf2"),
            Some(MapperSelection::Exhaustive)
        );
        assert!(matches!(
            MapperSelection::parse("fdls"),
            Some(MapperSelection::Filtered(_))
        ));
        assert_eq!(MapperSelection::parse("magic"), None);
    }

    #[test]
    fn dispatch_agrees_across_engines_on_a_small_target() {
        let pattern = presets::line(4);
        let target = presets::guadalupe16();
        let a = enumerate_embeddings(&pattern, &target, usize::MAX, MapperSelection::Exhaustive);
        let b = enumerate_embeddings(
            &pattern,
            &target,
            usize::MAX,
            MapperSelection::Filtered(FdlsConfig::exhaustive()),
        );
        assert!(a.is_complete() && b.is_complete());
        let mut sa = a.embeddings;
        let mut sb = b.embeddings;
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb);
    }
}
