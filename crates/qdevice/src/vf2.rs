//! Subgraph-isomorphism enumeration (VF2-style).
//!
//! EDM transplants a mapped circuit onto alternative qubit subsets by
//! enumerating embeddings of the circuit's interaction graph into the device
//! coupling graph (§5.2 of the paper, which uses the VF2 algorithm of
//! Cordella et al.). This module implements the enumeration from scratch:
//! a backtracking search with candidate pruning, ordered so that each pattern
//! vertex (after the first of its component) is matched adjacent to already
//! matched vertices.
//!
//! The match is *non-induced*: every pattern edge must map to a target edge,
//! but extra target edges between mapped vertices are allowed — exactly what
//! qubit mapping needs.

use crate::mapper::{EmbeddingSet, SearchOutcome};
use crate::Topology;

/// Enumerates injective mappings `phi` from pattern vertices to target
/// vertices such that every pattern edge `(a, b)` maps to a target edge
/// `(phi[a], phi[b])`.
///
/// Results are returned as vectors indexed by pattern vertex. At most
/// `max_results` embeddings are produced (pass `usize::MAX` for all of them).
/// Isolated pattern vertices are matched to any unused target vertex.
///
/// This wrapper drops the [`SearchOutcome`]; callers that must know whether
/// the cap truncated the pool (any ESP ranking does — a silently clipped
/// pool biases the top-K) should use [`enumerate`] instead.
///
/// # Examples
///
/// ```
/// use qdevice::{presets, vf2};
/// // Embed a 3-qubit path into a 4-qubit line: 0-1-2 fits 4 ways
/// // (starting at 0 or 1, in either direction).
/// let pattern = presets::line(3);
/// let target = presets::line(4);
/// let found = vf2::enumerate_subgraph_isomorphisms(&pattern, &target, usize::MAX);
/// assert_eq!(found.len(), 4);
/// ```
pub fn enumerate_subgraph_isomorphisms(
    pattern: &Topology,
    target: &Topology,
    max_results: usize,
) -> Vec<Vec<u32>> {
    enumerate(pattern, target, max_results).embeddings
}

/// Like [`enumerate_subgraph_isomorphisms`], but reports whether the result
/// cap cut the enumeration short.
///
/// The search runs one embedding past `max_results`, so a pool of exactly
/// `max_results` embeddings is still reported [`SearchOutcome::Complete`];
/// only a genuinely clipped pool is `Truncated` (and counted by the
/// `edm_qdevice_vf2_cap_hits_total` telemetry counter).
pub fn enumerate(pattern: &Topology, target: &Topology, max_results: usize) -> EmbeddingSet {
    let _span = edm_telemetry::trace::span("vf2_enumerate");
    let set = edm_telemetry::histogram!(
        "edm_qdevice_vf2_us",
        "Wall time of one VF2 subgraph-isomorphism enumeration"
    )
    .time(|| enumerate_inner(pattern, target, max_results));
    edm_telemetry::counter!(
        "edm_qdevice_vf2_embeddings_total",
        "Embeddings produced by VF2 enumeration"
    )
    .add(set.embeddings.len() as u64);
    if !set.is_complete() {
        edm_telemetry::counter!(
            "edm_qdevice_vf2_cap_hits_total",
            "VF2 enumerations truncated by their result cap"
        )
        .inc();
    }
    set
}

fn enumerate_inner(pattern: &Topology, target: &Topology, max_results: usize) -> EmbeddingSet {
    let pn = pattern.num_qubits() as usize;
    let tn = target.num_qubits() as usize;
    let complete = |embeddings: Vec<Vec<u32>>| EmbeddingSet {
        embeddings,
        outcome: SearchOutcome::Complete,
    };
    if pn == 0 {
        return if max_results > 0 {
            complete(vec![Vec::new()])
        } else {
            complete(Vec::new())
        };
    }
    if pn > tn {
        return complete(Vec::new());
    }

    // Search one past the cap: finding max_results + 1 embeddings proves
    // the cap actually clipped the pool.
    let limit = max_results.saturating_add(1);
    let order = matching_order(pattern);
    let mut state = State {
        pattern,
        target,
        order,
        mapping: vec![u32::MAX; pn],
        used: vec![false; tn],
        results: Vec::new(),
        max_results: limit,
        nodes: 0,
    };
    state.search(0);
    let mut embeddings = state.results;
    let truncated = embeddings.len() > max_results;
    if truncated {
        embeddings.truncate(max_results);
    }
    EmbeddingSet {
        embeddings,
        outcome: if truncated {
            SearchOutcome::Truncated {
                explored: state.nodes,
            }
        } else {
            SearchOutcome::Complete
        },
    }
}

/// Returns true if at least one embedding of `pattern` into `target` exists.
pub fn is_embeddable(pattern: &Topology, target: &Topology) -> bool {
    !enumerate_subgraph_isomorphisms(pattern, target, 1).is_empty()
}

/// Computes a matching order: vertices sorted so that every vertex after the
/// first of its connected component has at least one earlier neighbor.
/// Components are visited by descending maximum degree, which narrows the
/// candidate sets early. Shared with [`crate::fdls`] so both engines walk
/// the same search tree shape (their embedding *sets* must agree whenever
/// FDLS runs unbudgeted).
pub(crate) fn matching_order(pattern: &Topology) -> Vec<u32> {
    let n = pattern.num_qubits();
    let mut order = Vec::with_capacity(n as usize);
    let mut placed = vec![false; n as usize];
    loop {
        // Pick the highest-degree unplaced vertex as the next component seed.
        let seed = (0..n)
            .filter(|&v| !placed[v as usize])
            .max_by_key(|&v| pattern.degree(v));
        let Some(seed) = seed else { break };
        // Grow the component greedily: always add the unplaced vertex with
        // the most already-placed neighbors (ties broken by degree).
        placed[seed as usize] = true;
        order.push(seed);
        loop {
            let next = (0..n)
                .filter(|&v| !placed[v as usize])
                .map(|v| {
                    let placed_neighbors = pattern
                        .neighbors(v)
                        .iter()
                        .filter(|&&u| placed[u as usize])
                        .count();
                    (placed_neighbors, pattern.degree(v), v)
                })
                .filter(|&(pn_count, _, _)| pn_count > 0)
                .max();
            match next {
                Some((_, _, v)) => {
                    placed[v as usize] = true;
                    order.push(v);
                }
                None => break,
            }
        }
    }
    order
}

struct State<'a> {
    pattern: &'a Topology,
    target: &'a Topology,
    order: Vec<u32>,
    mapping: Vec<u32>,
    used: Vec<bool>,
    results: Vec<Vec<u32>>,
    max_results: usize,
    /// Search-tree nodes expanded (candidate placements tried).
    nodes: u64,
}

impl State<'_> {
    fn search(&mut self, depth: usize) {
        if self.results.len() >= self.max_results {
            return;
        }
        if depth == self.order.len() {
            self.results.push(self.mapping.clone());
            return;
        }
        let v = self.order[depth];
        // Candidate targets: if v has mapped neighbors, candidates are the
        // target-neighbors of one mapped image (the smallest pruning set);
        // otherwise every unused target vertex.
        let mapped_neighbor = self
            .pattern
            .neighbors(v)
            .iter()
            .find(|&&u| self.mapping[u as usize] != u32::MAX)
            .copied();
        let candidates: Vec<u32> = match mapped_neighbor {
            Some(u) => self
                .target
                .neighbors(self.mapping[u as usize])
                .iter()
                .copied()
                .filter(|&t| !self.used[t as usize])
                .collect(),
            None => (0..self.target.num_qubits())
                .filter(|&t| !self.used[t as usize])
                .collect(),
        };
        'cand: for t in candidates {
            // Feasibility: degree and full adjacency consistency.
            if self.target.degree(t) < self.pattern.degree(v) {
                continue;
            }
            for &u in self.pattern.neighbors(v) {
                let img = self.mapping[u as usize];
                if img != u32::MAX && !self.target.has_edge(t, img) {
                    continue 'cand;
                }
            }
            self.nodes += 1;
            self.mapping[v as usize] = t;
            self.used[t as usize] = true;
            self.search(depth + 1);
            self.used[t as usize] = false;
            self.mapping[v as usize] = u32::MAX;
            if self.results.len() >= self.max_results {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::Topology;

    fn check_valid(pattern: &Topology, target: &Topology, phi: &[u32]) {
        // Injective.
        let mut seen = std::collections::BTreeSet::new();
        for &t in phi {
            assert!(seen.insert(t), "mapping not injective: {phi:?}");
        }
        // Edge-preserving.
        for e in pattern.edges() {
            assert!(
                target.has_edge(phi[e.lo() as usize], phi[e.hi() as usize]),
                "edge {e} not preserved by {phi:?}"
            );
        }
    }

    #[test]
    fn path_into_line_counts() {
        let pattern = presets::line(3);
        let target = presets::line(5);
        let found = enumerate_subgraph_isomorphisms(&pattern, &target, usize::MAX);
        // Three start positions, two directions each.
        assert_eq!(found.len(), 6);
        for phi in &found {
            check_valid(&pattern, &target, phi);
        }
    }

    #[test]
    fn path_into_ring_counts() {
        let pattern = presets::line(3);
        let target = presets::ring(6);
        let found = enumerate_subgraph_isomorphisms(&pattern, &target, usize::MAX);
        // 6 start positions * 2 directions.
        assert_eq!(found.len(), 12);
    }

    #[test]
    fn triangle_does_not_embed_into_tree() {
        let triangle = presets::ring(3);
        let tree = presets::line(5);
        assert!(!is_embeddable(&triangle, &tree));
        assert!(enumerate_subgraph_isomorphisms(&triangle, &tree, usize::MAX).is_empty());
    }

    #[test]
    fn triangle_embeds_into_dense_graph() {
        let triangle = presets::ring(3);
        let target = presets::tokyo20();
        assert!(is_embeddable(&triangle, &target));
    }

    #[test]
    fn star_requires_degree() {
        // A 4-star (center + 3 leaves) cannot embed into a line (max degree 2)
        let star = Topology::new(4, &[(0, 1), (0, 2), (0, 3)]);
        assert!(!is_embeddable(&star, &presets::line(10)));
        // ... but embeds into melbourne (degree-3 vertices exist).
        assert!(is_embeddable(&star, &presets::melbourne14()));
    }

    #[test]
    fn max_results_caps_enumeration() {
        let pattern = presets::line(2);
        let target = presets::melbourne14();
        let found = enumerate_subgraph_isomorphisms(&pattern, &target, 5);
        assert_eq!(found.len(), 5);
    }

    #[test]
    fn cap_hit_is_reported_not_silent() {
        let pattern = presets::line(2);
        let target = presets::melbourne14(); // 18 edges -> 36 embeddings
        let clipped = enumerate(&pattern, &target, 5);
        assert_eq!(clipped.embeddings.len(), 5);
        assert!(matches!(
            clipped.outcome,
            SearchOutcome::Truncated { explored } if explored > 0
        ));
        // A cap exactly at the pool size is not a truncation.
        let exact = enumerate(&pattern, &target, 36);
        assert_eq!(exact.embeddings.len(), 36);
        assert!(exact.is_complete());
        let all = enumerate(&pattern, &target, usize::MAX);
        assert!(all.is_complete());
        assert_eq!(all.embeddings.len(), 36);
    }

    #[test]
    fn pattern_larger_than_target_is_empty() {
        assert!(
            enumerate_subgraph_isomorphisms(&presets::line(5), &presets::line(4), 10).is_empty()
        );
    }

    #[test]
    fn empty_pattern_has_single_empty_embedding() {
        let empty = Topology::new(0, &[]);
        let found = enumerate_subgraph_isomorphisms(&empty, &presets::line(3), usize::MAX);
        assert_eq!(found, vec![Vec::<u32>::new()]);
    }

    #[test]
    fn isolated_vertices_map_anywhere_unused() {
        // Pattern: one edge + one isolated vertex, into a line of 3.
        let pattern = Topology::new(3, &[(0, 1)]);
        let target = presets::line(3);
        let found = enumerate_subgraph_isomorphisms(&pattern, &target, usize::MAX);
        for phi in &found {
            check_valid(&pattern, &target, phi);
        }
        // Edge (0,1) can sit on (0,1),(1,0),(1,2),(2,1); vertex 2 takes the
        // remaining spot: 4 embeddings.
        assert_eq!(found.len(), 4);
    }

    #[test]
    fn embeddings_into_melbourne_are_valid() {
        // BV-6-like star-ish interaction pattern.
        let pattern = Topology::new(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let target = presets::melbourne14();
        let found = enumerate_subgraph_isomorphisms(&pattern, &target, usize::MAX);
        assert!(!found.is_empty());
        for phi in &found {
            check_valid(&pattern, &target, phi);
        }
    }

    #[test]
    fn all_embeddings_distinct() {
        let pattern = presets::line(4);
        let target = presets::melbourne14();
        let found = enumerate_subgraph_isomorphisms(&pattern, &target, usize::MAX);
        let mut set = std::collections::BTreeSet::new();
        for phi in &found {
            assert!(set.insert(phi.clone()), "duplicate embedding {phi:?}");
        }
    }
}
