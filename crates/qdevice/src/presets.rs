//! Preset coupling topologies.
//!
//! [`melbourne14`] reproduces the coupling map of the IBMQ-14 machine the
//! paper evaluates on; the other presets let the EDM machinery be exercised
//! on different device shapes.

use crate::Topology;

/// The 14-qubit `ibmq-16-melbourne` coupling map (the paper's IBMQ-14).
///
/// Two rows of seven qubits with rung couplings, matching IBM's published
/// device graph:
///
/// ```text
///  0 —  1 —  2 —  3 —  4 —  5 —  6
///       |    |    |    |    |    |
/// 13 — 12 — 11 — 10 —  9 —  8 —  7
/// ```
///
/// # Examples
///
/// ```
/// use qdevice::presets::melbourne14;
/// let t = melbourne14();
/// assert_eq!(t.num_qubits(), 14);
/// assert!(t.is_connected());
/// ```
pub fn melbourne14() -> Topology {
    Topology::new(
        14,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (1, 13),
            (2, 12),
            (3, 11),
            (4, 10),
            (5, 9),
            (6, 8),
            (7, 8),
            (8, 9),
            (9, 10),
            (10, 11),
            (11, 12),
            (12, 13),
        ],
    )
}

/// The 20-qubit IBM Tokyo coupling map (a denser 4x5 lattice with diagonal
/// couplings), used to show EDM generalises beyond IBMQ-14.
pub fn tokyo20() -> Topology {
    Topology::new(
        20,
        &[
            // Horizontal rows.
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (10, 11),
            (11, 12),
            (12, 13),
            (13, 14),
            (15, 16),
            (16, 17),
            (17, 18),
            (18, 19),
            // Vertical columns.
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9),
            (5, 10),
            (6, 11),
            (7, 12),
            (8, 13),
            (9, 14),
            (10, 15),
            (11, 16),
            (12, 17),
            (13, 18),
            (14, 19),
            // Diagonal couplings present on the Tokyo device.
            (1, 7),
            (2, 6),
            (3, 9),
            (4, 8),
            (5, 11),
            (6, 10),
            (7, 13),
            (8, 12),
            (11, 17),
            (12, 16),
            (13, 19),
            (14, 18),
        ],
    )
}

/// A linear chain of `n` qubits.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line(n: u32) -> Topology {
    assert!(n > 0, "a line topology needs at least one qubit");
    let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Topology::new(n, &edges)
}

/// A `rows x cols` rectangular grid.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: u32, cols: u32) -> Topology {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut edges = Vec::new();
    let at = |r: u32, c: u32| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((at(r, c), at(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((at(r, c), at(r + 1, c)));
            }
        }
    }
    Topology::new(rows * cols, &edges)
}

/// The 16-qubit IBM Falcon "guadalupe" coupling map — a heavy-hex cell,
/// the topology family IBM moved to after melbourne. Useful for checking
/// that EDM's machinery generalizes to sparser, lower-degree devices.
///
/// ```text
///  0 - 1 - 2 - 3 - 5 - 8 - 9
///      |           |
///      4           11
///      |           |
///  6 - 7 - 10 - 12 - 13 - 14
///               |
///               15
/// ```
pub fn guadalupe16() -> Topology {
    Topology::new(
        16,
        &[
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
        ],
    )
}

/// The 27-qubit IBM Falcon coupling map (the `ibmq_montreal` /
/// `ibm_cairo` generation): a heavy-hex fragment with max degree 3.
///
/// ```text
///  0 - 1 - 4 - 7 - 10 - 12 - 15 - 18 - 21 - 23
///      |             |              |
///      2             13             24
///      |             |              |
///  3 - 5 - 8 - 11 - 14 - 16 - 19 - 22 - 25 - 26
///                         |
///                  (plus the 6-17-20 spur)
/// ```
///
/// Exact IBM qubit numbering is not reproduced — only the graph shape
/// (qubit count, degree distribution, heavy-hex sparsity) matters to the
/// mapper and the noise synthesis.
pub fn falcon27() -> Topology {
    Topology::new(
        27,
        &[
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
            (14, 16),
            (15, 18),
            (16, 19),
            (17, 18),
            (18, 21),
            (19, 20),
            (19, 22),
            (21, 23),
            (22, 25),
            (23, 24),
            (24, 25),
            (25, 26),
        ],
    )
}

/// The 65-qubit IBM Hummingbird heavy-hex lattice (`ibmq_manhattan` /
/// `ibmq_brooklyn` scale): five rows of 10/11/11/11/10 qubits joined by
/// three bridge qubits per row gap. Built by [`heavy_hex`].
pub fn hummingbird65() -> Topology {
    heavy_hex(5, 11)
}

/// The 127-qubit IBM Eagle heavy-hex lattice (`ibm_washington` scale):
/// seven rows of 14/15/15/15/15/15/14 qubits joined by four bridge qubits
/// per row gap. Built by [`heavy_hex`].
pub fn eagle127() -> Topology {
    heavy_hex(7, 15)
}

/// A generic heavy-hex lattice of `rows` cell rows by `cols` columns
/// (IBM's post-Falcon topology family): the first row omits its last
/// column, the last row omits its first, and consecutive rows are joined
/// through degree-2 bridge qubits every fourth column (offset by two on
/// alternating gaps). Max degree is 3 everywhere; roughly half the qubits
/// sit on degree-2 sites — the sparsity that makes exhaustive embedding
/// enumeration explode and motivates the [`crate::fdls`] mapper.
///
/// # Panics
///
/// Panics if `rows < 2`, `cols < 7`, or `cols` is even (bridge columns
/// repeat every fourth column, so narrower or even widths leave rows
/// unbridged or misaligned).
pub fn heavy_hex(rows: u32, cols: u32) -> Topology {
    assert!(
        rows >= 2 && cols >= 7 && cols % 2 == 1,
        "heavy-hex needs rows >= 2 and an odd cols >= 7"
    );
    let present =
        |r: u32, c: u32| -> bool { !((r == 0 && c == cols - 1) || (r == rows - 1 && c == 0)) };
    let mut next: u32 = 0;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut prev_row: Vec<Option<u32>> = Vec::new();
    for r in 0..rows {
        let mut row: Vec<Option<u32>> = Vec::with_capacity(cols as usize);
        for c in 0..cols {
            if present(r, c) {
                row.push(Some(next));
                next += 1;
            } else {
                row.push(None);
            }
        }
        // Chain the row's contiguous cells.
        for c in 1..cols as usize {
            if let (Some(a), Some(b)) = (row[c - 1], row[c]) {
                edges.push((a, b));
            }
        }
        // Bridge qubits down from the previous row: even gaps bridge at
        // columns 0, 4, 8, …; odd gaps at 2, 6, 10, …
        if r > 0 {
            let gap = r - 1;
            let mut c = if gap % 2 == 0 { 0 } else { 2 };
            while c < cols {
                if let (Some(a), Some(b)) = (prev_row[c as usize], row[c as usize]) {
                    let bridge = next;
                    next += 1;
                    edges.push((a, bridge));
                    edges.push((bridge, b));
                }
                c += 4;
            }
        }
        prev_row = row;
    }
    Topology::new(next, &edges)
}

/// Every named device preset, in ascending qubit count — the vocabulary
/// [`by_name`] accepts and the CLIs list in their usage text.
pub const NAMES: &[&str] = &[
    "melbourne14",
    "guadalupe16",
    "tokyo20",
    "falcon27",
    "hummingbird65",
    "eagle127",
];

/// Looks a named device preset up (see [`NAMES`]).
///
/// # Examples
///
/// ```
/// use qdevice::presets;
/// assert_eq!(presets::by_name("eagle127").unwrap().num_qubits(), 127);
/// assert!(presets::by_name("osprey433").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Topology> {
    match name {
        "melbourne14" => Some(melbourne14()),
        "guadalupe16" => Some(guadalupe16()),
        "tokyo20" => Some(tokyo20()),
        "falcon27" => Some(falcon27()),
        "hummingbird65" => Some(hummingbird65()),
        "eagle127" => Some(eagle127()),
        _ => None,
    }
}

/// A ring (cycle) of `n` qubits.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: u32) -> Topology {
    assert!(n >= 3, "a ring needs at least three qubits");
    let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Topology::new(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn melbourne_shape() {
        let t = melbourne14();
        assert_eq!(t.num_qubits(), 14);
        assert_eq!(t.num_edges(), 18);
        assert!(t.is_connected());
        // Corner qubits have degree 1 or 2; interior rung qubits degree 3.
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.degree(7), 1);
        assert_eq!(t.degree(3), 3);
        assert_eq!(t.degree(11), 3);
        // The two rows are only connected via rungs.
        assert!(t.has_edge(1, 13));
        assert!(!t.has_edge(0, 13));
    }

    #[test]
    fn tokyo_shape() {
        let t = tokyo20();
        assert_eq!(t.num_qubits(), 20);
        assert!(t.is_connected());
        assert!(t.has_edge(1, 7)); // diagonal
        assert!(t.num_edges() > 30);
    }

    #[test]
    fn line_shape() {
        let t = line(5);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.distance(0, 4), Some(4));
        let single = line(1);
        assert_eq!(single.num_edges(), 0);
        assert!(single.is_connected());
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn line_rejects_zero() {
        let _ = line(0);
    }

    #[test]
    fn grid_shape() {
        let t = grid(3, 4);
        assert_eq!(t.num_qubits(), 12);
        // 3*3 horizontal + 2*4 vertical = 17 edges.
        assert_eq!(t.num_edges(), 17);
        assert!(t.is_connected());
        assert_eq!(t.distance(0, 11), Some(5));
    }

    #[test]
    fn guadalupe_shape() {
        let t = guadalupe16();
        assert_eq!(t.num_qubits(), 16);
        assert!(t.is_connected());
        // Heavy-hex devices are sparse: max degree 3.
        assert!((0..16).all(|q| t.degree(q) <= 3));
        assert_eq!(t.num_edges(), 16);
    }

    #[test]
    fn falcon_shape() {
        let t = falcon27();
        assert_eq!(t.num_qubits(), 27);
        assert_eq!(t.num_edges(), 28);
        assert!(t.is_connected());
        assert!((0..27).all(|q| t.degree(q) <= 3));
        // Heavy-hex: bridge qubits sit at degree 2 or below; the lattice
        // interior holds the degree-3 sites.
        assert!((0..27).filter(|&q| t.degree(q) == 3).count() >= 8);
    }

    #[test]
    fn hummingbird_shape() {
        let t = hummingbird65();
        assert_eq!(t.num_qubits(), 65);
        // Rows: 9 + 10 + 10 + 10 + 9 = 48; bridges: 4 gaps * 3 * 2 = 24.
        assert_eq!(t.num_edges(), 72);
        assert!(t.is_connected());
        assert!((0..65).all(|q| t.degree(q) <= 3));
    }

    #[test]
    fn eagle_shape() {
        let t = eagle127();
        assert_eq!(t.num_qubits(), 127);
        // Rows: 13 + 14*5 + 13 = 96; bridges: 6 gaps * 4 * 2 = 48.
        assert_eq!(t.num_edges(), 144);
        assert!(t.is_connected());
        assert!((0..127).all(|q| t.degree(q) <= 3));
        // The heavy-hex degree profile: far more degree-2 than degree-3
        // sites (every bridge qubit and every row cell off a bridge column).
        let deg3 = (0..127).filter(|&q| t.degree(q) == 3).count();
        let deg2 = (0..127).filter(|&q| t.degree(q) == 2).count();
        assert!(
            deg2 > deg3,
            "degree profile not heavy-hex: {deg2} vs {deg3}"
        );
    }

    #[test]
    fn heavy_hex_generator_guards() {
        // Smallest legal lattice is connected and degree-bounded.
        let t = heavy_hex(2, 7);
        assert!(t.is_connected());
        assert!((0..t.num_qubits()).all(|q| t.degree(q) <= 3));
    }

    #[test]
    #[should_panic(expected = "heavy-hex needs")]
    fn heavy_hex_rejects_even_cols() {
        let _ = heavy_hex(3, 8);
    }

    #[test]
    fn by_name_covers_every_preset() {
        for &name in NAMES {
            let t = by_name(name).expect("listed preset resolves");
            assert!(t.is_connected(), "{name} disconnected");
            // Names end in their qubit count.
            let digits: String = name.chars().filter(char::is_ascii_digit).collect();
            assert_eq!(digits.parse::<u32>().unwrap(), t.num_qubits(), "{name}");
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn ring_shape() {
        let t = ring(6);
        assert_eq!(t.num_edges(), 6);
        assert_eq!(t.distance(0, 3), Some(3));
        assert_eq!(t.degree(0), 2);
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn ring_rejects_too_small() {
        let _ = ring(2);
    }
}
