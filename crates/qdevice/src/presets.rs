//! Preset coupling topologies.
//!
//! [`melbourne14`] reproduces the coupling map of the IBMQ-14 machine the
//! paper evaluates on; the other presets let the EDM machinery be exercised
//! on different device shapes.

use crate::Topology;

/// The 14-qubit `ibmq-16-melbourne` coupling map (the paper's IBMQ-14).
///
/// Two rows of seven qubits with rung couplings, matching IBM's published
/// device graph:
///
/// ```text
///  0 —  1 —  2 —  3 —  4 —  5 —  6
///       |    |    |    |    |    |
/// 13 — 12 — 11 — 10 —  9 —  8 —  7
/// ```
///
/// # Examples
///
/// ```
/// use qdevice::presets::melbourne14;
/// let t = melbourne14();
/// assert_eq!(t.num_qubits(), 14);
/// assert!(t.is_connected());
/// ```
pub fn melbourne14() -> Topology {
    Topology::new(
        14,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (1, 13),
            (2, 12),
            (3, 11),
            (4, 10),
            (5, 9),
            (6, 8),
            (7, 8),
            (8, 9),
            (9, 10),
            (10, 11),
            (11, 12),
            (12, 13),
        ],
    )
}

/// The 20-qubit IBM Tokyo coupling map (a denser 4x5 lattice with diagonal
/// couplings), used to show EDM generalises beyond IBMQ-14.
pub fn tokyo20() -> Topology {
    Topology::new(
        20,
        &[
            // Horizontal rows.
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (10, 11),
            (11, 12),
            (12, 13),
            (13, 14),
            (15, 16),
            (16, 17),
            (17, 18),
            (18, 19),
            // Vertical columns.
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9),
            (5, 10),
            (6, 11),
            (7, 12),
            (8, 13),
            (9, 14),
            (10, 15),
            (11, 16),
            (12, 17),
            (13, 18),
            (14, 19),
            // Diagonal couplings present on the Tokyo device.
            (1, 7),
            (2, 6),
            (3, 9),
            (4, 8),
            (5, 11),
            (6, 10),
            (7, 13),
            (8, 12),
            (11, 17),
            (12, 16),
            (13, 19),
            (14, 18),
        ],
    )
}

/// A linear chain of `n` qubits.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line(n: u32) -> Topology {
    assert!(n > 0, "a line topology needs at least one qubit");
    let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Topology::new(n, &edges)
}

/// A `rows x cols` rectangular grid.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: u32, cols: u32) -> Topology {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut edges = Vec::new();
    let at = |r: u32, c: u32| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((at(r, c), at(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((at(r, c), at(r + 1, c)));
            }
        }
    }
    Topology::new(rows * cols, &edges)
}

/// The 16-qubit IBM Falcon "guadalupe" coupling map — a heavy-hex cell,
/// the topology family IBM moved to after melbourne. Useful for checking
/// that EDM's machinery generalizes to sparser, lower-degree devices.
///
/// ```text
///  0 - 1 - 2 - 3 - 5 - 8 - 9
///      |           |
///      4           11
///      |           |
///  6 - 7 - 10 - 12 - 13 - 14
///               |
///               15
/// ```
pub fn guadalupe16() -> Topology {
    Topology::new(
        16,
        &[
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
        ],
    )
}

/// A ring (cycle) of `n` qubits.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: u32) -> Topology {
    assert!(n >= 3, "a ring needs at least three qubits");
    let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Topology::new(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn melbourne_shape() {
        let t = melbourne14();
        assert_eq!(t.num_qubits(), 14);
        assert_eq!(t.num_edges(), 18);
        assert!(t.is_connected());
        // Corner qubits have degree 1 or 2; interior rung qubits degree 3.
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.degree(7), 1);
        assert_eq!(t.degree(3), 3);
        assert_eq!(t.degree(11), 3);
        // The two rows are only connected via rungs.
        assert!(t.has_edge(1, 13));
        assert!(!t.has_edge(0, 13));
    }

    #[test]
    fn tokyo_shape() {
        let t = tokyo20();
        assert_eq!(t.num_qubits(), 20);
        assert!(t.is_connected());
        assert!(t.has_edge(1, 7)); // diagonal
        assert!(t.num_edges() > 30);
    }

    #[test]
    fn line_shape() {
        let t = line(5);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.distance(0, 4), Some(4));
        let single = line(1);
        assert_eq!(single.num_edges(), 0);
        assert!(single.is_connected());
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn line_rejects_zero() {
        let _ = line(0);
    }

    #[test]
    fn grid_shape() {
        let t = grid(3, 4);
        assert_eq!(t.num_qubits(), 12);
        // 3*3 horizontal + 2*4 vertical = 17 edges.
        assert_eq!(t.num_edges(), 17);
        assert!(t.is_connected());
        assert_eq!(t.distance(0, 11), Some(5));
    }

    #[test]
    fn guadalupe_shape() {
        let t = guadalupe16();
        assert_eq!(t.num_qubits(), 16);
        assert!(t.is_connected());
        // Heavy-hex devices are sparse: max degree 3.
        assert!((0..16).all(|q| t.degree(q) <= 3));
        assert_eq!(t.num_edges(), 16);
    }

    #[test]
    fn ring_shape() {
        let t = ring(6);
        assert_eq!(t.num_edges(), 6);
        assert_eq!(t.distance(0, 3), Some(3));
        assert_eq!(t.degree(0), 2);
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn ring_rejects_too_small() {
        let _ = ring(2);
    }
}
