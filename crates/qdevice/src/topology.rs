//! Coupling graphs: which physical qubit pairs support two-qubit gates.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// An undirected edge of a coupling graph, stored with its endpoints in
/// ascending order so that `(a, b)` and `(b, a)` compare equal.
///
/// # Examples
///
/// ```
/// use qdevice::Edge;
/// assert_eq!(Edge::new(3, 1), Edge::new(1, 3));
/// assert_eq!(Edge::new(3, 1).lo(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge(u32, u32);

impl Edge {
    /// Creates a normalized edge.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loops are not valid couplings).
    pub fn new(a: u32, b: u32) -> Self {
        assert_ne!(a, b, "coupling edges cannot be self-loops");
        if a < b {
            Edge(a, b)
        } else {
            Edge(b, a)
        }
    }

    /// The smaller endpoint.
    pub fn lo(self) -> u32 {
        self.0
    }

    /// The larger endpoint.
    pub fn hi(self) -> u32 {
        self.1
    }

    /// Both endpoints as a tuple `(min, max)`.
    pub fn endpoints(self) -> (u32, u32) {
        (self.0, self.1)
    }

    /// True if `q` is one of the endpoints.
    pub fn touches(self, q: u32) -> bool {
        self.0 == q || self.1 == q
    }

    /// Given one endpoint, returns the other, or `None` if `q` is not an
    /// endpoint of this edge.
    ///
    /// Edges frequently come from untrusted input (persisted device files,
    /// service requests), so a bad endpoint is a recoverable condition, not
    /// a programming error.
    ///
    /// # Examples
    ///
    /// ```
    /// use qdevice::Edge;
    /// let e = Edge::new(1, 4);
    /// assert_eq!(e.other(1), Some(4));
    /// assert_eq!(e.other(2), None);
    /// ```
    pub fn other(self, q: u32) -> Option<u32> {
        if q == self.0 {
            Some(self.1)
        } else if q == self.1 {
            Some(self.0)
        } else {
            None
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.0, self.1)
    }
}

/// An undirected coupling graph over `num_qubits` physical qubits.
///
/// Two-qubit gates may only be applied along edges; entangling more distant
/// qubits requires routing via SWAPs (see the `qmap` crate).
///
/// # Examples
///
/// ```
/// use qdevice::Topology;
/// let line = Topology::new(4, &[(0, 1), (1, 2), (2, 3)]);
/// assert!(line.has_edge(1, 2));
/// assert!(!line.has_edge(0, 3));
/// assert_eq!(line.distance(0, 3), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    num_qubits: u32,
    adjacency: Vec<BTreeSet<u32>>,
    edges: Vec<Edge>,
}

impl Topology {
    /// Builds a topology from an edge list.
    ///
    /// Duplicate edges are deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_qubits` or if an edge is a self-loop.
    pub fn new(num_qubits: u32, edges: &[(u32, u32)]) -> Self {
        let mut adjacency = vec![BTreeSet::new(); num_qubits as usize];
        let mut set = BTreeSet::new();
        for &(a, b) in edges {
            assert!(
                a < num_qubits && b < num_qubits,
                "edge ({a},{b}) out of range for {num_qubits} qubits"
            );
            let e = Edge::new(a, b);
            if set.insert(e) {
                adjacency[a as usize].insert(b);
                adjacency[b as usize].insert(a);
            }
        }
        Topology {
            num_qubits,
            adjacency,
            edges: set.into_iter().collect(),
        }
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The deduplicated, normalized edge list in ascending order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of coupling edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Neighbors of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn neighbors(&self, q: u32) -> &BTreeSet<u32> {
        &self.adjacency[q as usize]
    }

    /// Degree (number of couplings) of qubit `q`.
    pub fn degree(&self, q: u32) -> usize {
        self.adjacency[q as usize].len()
    }

    /// True if qubits `a` and `b` are directly coupled.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        a != b
            && a < self.num_qubits
            && b < self.num_qubits
            && self.adjacency[a as usize].contains(&b)
    }

    /// BFS shortest-path distance between two qubits in coupling hops, or
    /// `None` if they are disconnected.
    pub fn distance(&self, from: u32, to: u32) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut seen = vec![false; self.num_qubits as usize];
        let mut queue = VecDeque::new();
        seen[from as usize] = true;
        queue.push_back((from, 0usize));
        while let Some((q, d)) = queue.pop_front() {
            for &n in &self.adjacency[q as usize] {
                if n == to {
                    return Some(d + 1);
                }
                if !seen[n as usize] {
                    seen[n as usize] = true;
                    queue.push_back((n, d + 1));
                }
            }
        }
        None
    }

    /// All-pairs BFS distance matrix; `usize::MAX` marks disconnected pairs.
    pub fn distance_matrix(&self) -> Vec<Vec<usize>> {
        let n = self.num_qubits as usize;
        let mut m = vec![vec![usize::MAX; n]; n];
        for (s, row) in m.iter_mut().enumerate() {
            row[s] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(s as u32);
            while let Some(q) = queue.pop_front() {
                let d = row[q as usize];
                for &x in &self.adjacency[q as usize] {
                    if row[x as usize] == usize::MAX {
                        row[x as usize] = d + 1;
                        queue.push_back(x);
                    }
                }
            }
        }
        m
    }

    /// One BFS shortest path from `from` to `to` (inclusive of endpoints),
    /// or `None` if disconnected.
    pub fn shortest_path(&self, from: u32, to: u32) -> Option<Vec<u32>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: Vec<Option<u32>> = vec![None; self.num_qubits as usize];
        let mut seen = vec![false; self.num_qubits as usize];
        let mut queue = VecDeque::new();
        seen[from as usize] = true;
        queue.push_back(from);
        while let Some(q) = queue.pop_front() {
            for &n in &self.adjacency[q as usize] {
                if !seen[n as usize] {
                    seen[n as usize] = true;
                    prev[n as usize] = Some(q);
                    if n == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while let Some(p) = prev[cur as usize] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(n);
                }
            }
        }
        None
    }

    /// A stable 64-bit content hash of the coupling graph.
    ///
    /// Two topologies fingerprint equal iff they have the same qubit count
    /// and the same normalized edge set. FNV-1a over a canonical encoding,
    /// independent of platform and process — the topology component of
    /// `edm-serve`'s compilation-cache key.
    ///
    /// # Examples
    ///
    /// ```
    /// use qdevice::Topology;
    /// let a = Topology::new(3, &[(0, 1), (1, 2)]);
    /// let b = Topology::new(3, &[(1, 2), (1, 0)]); // same graph, reordered
    /// assert_eq!(a.fingerprint(), b.fingerprint());
    /// assert_ne!(a.fingerprint(), Topology::new(3, &[(0, 1)]).fingerprint());
    /// ```
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let write = |word: u64, h: &mut u64| {
            for byte in word.to_le_bytes() {
                *h ^= u64::from(byte);
                *h = h.wrapping_mul(PRIME);
            }
        };
        write(u64::from(self.num_qubits), &mut h);
        write(self.edges.len() as u64, &mut h);
        for e in &self.edges {
            write(u64::from(e.lo()), &mut h);
            write(u64::from(e.hi()), &mut h);
        }
        h
    }

    /// True if every qubit can reach every other qubit.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits == 0 {
            return true;
        }
        let mut seen = vec![false; self.num_qubits as usize];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(0u32);
        let mut count = 1;
        while let Some(q) = queue.pop_front() {
            for &n in &self.adjacency[q as usize] {
                if !seen[n as usize] {
                    seen[n as usize] = true;
                    count += 1;
                    queue.push_back(n);
                }
            }
        }
        count == self.num_qubits
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology({} qubits, {} edges)",
            self.num_qubits,
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line4() -> Topology {
        Topology::new(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn edge_normalizes() {
        let e = Edge::new(5, 2);
        assert_eq!(e.lo(), 2);
        assert_eq!(e.hi(), 5);
        assert_eq!(e.endpoints(), (2, 5));
        assert_eq!(e, Edge::new(2, 5));
        assert_eq!(e.to_string(), "(2,5)");
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(1, 1);
    }

    #[test]
    fn edge_touches_and_other() {
        let e = Edge::new(1, 4);
        assert!(e.touches(1));
        assert!(e.touches(4));
        assert!(!e.touches(2));
        assert_eq!(e.other(1), Some(4));
        assert_eq!(e.other(4), Some(1));
    }

    #[test]
    fn edge_other_is_none_for_non_endpoint() {
        assert_eq!(Edge::new(1, 4).other(2), None);
        assert_eq!(Edge::new(0, 1).other(u32::MAX), None);
    }

    #[test]
    fn duplicate_edges_deduplicated() {
        let t = Topology::new(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(t.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn topology_rejects_out_of_range_edge() {
        let _ = Topology::new(2, &[(0, 2)]);
    }

    #[test]
    fn adjacency_queries() {
        let t = line4();
        assert!(t.has_edge(0, 1));
        assert!(t.has_edge(1, 0));
        assert!(!t.has_edge(0, 2));
        assert!(!t.has_edge(0, 0));
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.neighbors(1).iter().copied().collect::<Vec<_>>(), [0, 2]);
    }

    #[test]
    fn distances_on_a_line() {
        let t = line4();
        assert_eq!(t.distance(0, 0), Some(0));
        assert_eq!(t.distance(0, 3), Some(3));
        assert_eq!(t.distance(3, 0), Some(3));
        let m = t.distance_matrix();
        assert_eq!(m[0][3], 3);
        assert_eq!(m[1][2], 1);
    }

    #[test]
    fn disconnected_distance_is_none() {
        let t = Topology::new(4, &[(0, 1), (2, 3)]);
        assert_eq!(t.distance(0, 3), None);
        assert!(!t.is_connected());
        assert_eq!(t.distance_matrix()[0][2], usize::MAX);
    }

    #[test]
    fn shortest_path_endpoints_inclusive() {
        let t = line4();
        assert_eq!(t.shortest_path(0, 3), Some(vec![0, 1, 2, 3]));
        assert_eq!(t.shortest_path(2, 2), Some(vec![2]));
        let t2 = Topology::new(4, &[(0, 1), (2, 3)]);
        assert_eq!(t2.shortest_path(0, 3), None);
    }

    #[test]
    fn connectivity() {
        assert!(line4().is_connected());
        assert!(Topology::new(0, &[]).is_connected());
        assert!(Topology::new(1, &[]).is_connected());
        assert!(!Topology::new(2, &[]).is_connected());
    }

    #[test]
    fn fingerprint_ignores_edge_input_order() {
        let a = Topology::new(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = Topology::new(4, &[(2, 3), (1, 0), (2, 1), (0, 1)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different edge set or width changes the hash.
        assert_ne!(
            a.fingerprint(),
            Topology::new(4, &[(0, 1), (1, 2)]).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            Topology::new(5, &[(0, 1), (1, 2), (2, 3)]).fingerprint()
        );
    }

    #[test]
    fn ring_distance_wraps() {
        let ring = Topology::new(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(ring.distance(0, 3), Some(3));
        assert_eq!(ring.distance(0, 4), Some(2));
    }
}
