//! JSON persistence for device models and calibrations.
//!
//! Real workflows snapshot calibration data per cycle (IBM exposes it via
//! the Qiskit API; the paper's methodology §4.2 ties every experiment round
//! to a calibration snapshot). This module serializes [`DeviceModel`] and
//! [`Calibration`] to a stable JSON schema so experiments can be replayed
//! against a recorded device.
//!
//! Edge-keyed maps are stored as `[a, b, value]` triples because JSON
//! object keys must be strings.

use crate::topology::Edge;
use crate::{Calibration, DeviceModel, NoiseParams, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Serializable mirror of a [`DeviceModel`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceFile {
    /// Number of physical qubits.
    pub num_qubits: u32,
    /// Coupling edges.
    pub edges: Vec<(u32, u32)>,
    /// P(read 1 | 0) per qubit.
    pub readout_p01: Vec<f64>,
    /// P(read 0 | 1) per qubit.
    pub readout_p10: Vec<f64>,
    /// Single-qubit gate error per qubit.
    pub gate_1q_err: Vec<f64>,
    /// T1 per qubit (µs).
    pub t1_us: Vec<f64>,
    /// T2 per qubit (µs).
    pub t2_us: Vec<f64>,
    /// Single-qubit gate duration (µs).
    pub gate_time_1q_us: f64,
    /// CX duration (µs).
    pub gate_time_2q_us: f64,
    /// `(a, b, error)` triples per coupling.
    pub cx_err: Vec<(u32, u32, f64)>,
    /// `(a, b, angle)` hidden coherent over-rotations.
    pub coherent_cx_angle: Vec<(u32, u32, f64)>,
    /// `(a, b, angle)` hidden crosstalk phases.
    pub zz_crosstalk: Vec<(u32, u32, f64)>,
}

impl From<&DeviceModel> for DeviceFile {
    fn from(device: &DeviceModel) -> Self {
        let t = device.truth();
        let triples = |m: &BTreeMap<Edge, f64>| -> Vec<(u32, u32, f64)> {
            m.iter().map(|(e, &v)| (e.lo(), e.hi(), v)).collect()
        };
        DeviceFile {
            num_qubits: device.topology().num_qubits(),
            edges: device
                .topology()
                .edges()
                .iter()
                .map(|e| (e.lo(), e.hi()))
                .collect(),
            readout_p01: t.readout_p01.clone(),
            readout_p10: t.readout_p10.clone(),
            gate_1q_err: t.gate_1q_err.clone(),
            t1_us: t.t1_us.clone(),
            t2_us: t.t2_us.clone(),
            gate_time_1q_us: t.gate_time_1q_us,
            gate_time_2q_us: t.gate_time_2q_us,
            cx_err: triples(&t.cx_err),
            coherent_cx_angle: triples(&t.coherent_cx_angle),
            zz_crosstalk: triples(&t.zz_crosstalk),
        }
    }
}

impl DeviceFile {
    /// Reconstructs the device model.
    ///
    /// # Panics
    ///
    /// Panics if the file is internally inconsistent (mismatched vector
    /// lengths or out-of-range edges) — the same validation as
    /// [`DeviceModel::from_parts`].
    pub fn into_device(self) -> DeviceModel {
        let topology = Topology::new(self.num_qubits, &self.edges);
        let map = |v: Vec<(u32, u32, f64)>| -> BTreeMap<Edge, f64> {
            v.into_iter()
                .map(|(a, b, x)| (Edge::new(a, b), x))
                .collect()
        };
        let truth = NoiseParams {
            readout_p01: self.readout_p01,
            readout_p10: self.readout_p10,
            gate_1q_err: self.gate_1q_err,
            cx_err: map(self.cx_err),
            t1_us: self.t1_us,
            t2_us: self.t2_us,
            gate_time_1q_us: self.gate_time_1q_us,
            gate_time_2q_us: self.gate_time_2q_us,
            coherent_cx_angle: map(self.coherent_cx_angle),
            zz_crosstalk: map(self.zz_crosstalk),
        };
        DeviceModel::from_parts(topology, truth)
    }
}

/// Serializes a device model to pretty JSON.
///
/// # Errors
///
/// Returns a [`serde_json::Error`] if serialization fails (it cannot for
/// this schema, but the signature keeps the caller honest).
pub fn device_to_json(device: &DeviceModel) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(&DeviceFile::from(device))
}

/// Deserializes a device model from JSON produced by [`device_to_json`].
///
/// # Errors
///
/// Returns a [`serde_json::Error`] on malformed JSON.
///
/// # Panics
///
/// Panics if the JSON parses but is internally inconsistent (see
/// [`DeviceFile::into_device`]).
///
/// # Examples
///
/// ```
/// use qdevice::{persist, presets, DeviceModel};
/// let device = DeviceModel::synthesize(presets::melbourne14(), 5);
/// let json = persist::device_to_json(&device)?;
/// let restored = persist::device_from_json(&json)?;
/// assert_eq!(restored, device);
/// # Ok::<(), serde_json::Error>(())
/// ```
pub fn device_from_json(json: &str) -> Result<DeviceModel, serde_json::Error> {
    let file: DeviceFile = serde_json::from_str(json)?;
    Ok(file.into_device())
}

/// Serializable mirror of a [`Calibration`] (edge-keyed maps as triples).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationFile {
    /// Readout error per qubit.
    pub readout_err: Vec<f64>,
    /// Single-qubit gate error per qubit.
    pub gate_1q_err: Vec<f64>,
    /// `(a, b, error)` triples per coupling.
    pub cx_err: Vec<(u32, u32, f64)>,
    /// Calibration cycle counter (see [`Calibration::generation`]).
    pub generation: u64,
}

impl From<&Calibration> for CalibrationFile {
    fn from(cal: &Calibration) -> Self {
        CalibrationFile {
            readout_err: (0..cal.num_qubits()).map(|q| cal.readout_err(q)).collect(),
            gate_1q_err: (0..cal.num_qubits()).map(|q| cal.gate_1q_err(q)).collect(),
            cx_err: cal
                .cx_table()
                .iter()
                .map(|(e, &v)| (e.lo(), e.hi(), v))
                .collect(),
            generation: cal.generation(),
        }
    }
}

impl CalibrationFile {
    /// Reconstructs the calibration table.
    ///
    /// # Panics
    ///
    /// Panics on internally inconsistent data (the same validation as
    /// [`Calibration::new`]).
    pub fn into_calibration(self) -> Calibration {
        let cx: BTreeMap<Edge, f64> = self
            .cx_err
            .into_iter()
            .map(|(a, b, v)| (Edge::new(a, b), v))
            .collect();
        Calibration::new(self.readout_err, self.gate_1q_err, cx).with_generation(self.generation)
    }
}

/// Serializes a calibration table to pretty JSON.
///
/// # Errors
///
/// Returns a [`serde_json::Error`] if serialization fails.
pub fn calibration_to_json(cal: &Calibration) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(&CalibrationFile::from(cal))
}

/// Deserializes a calibration table produced by [`calibration_to_json`].
///
/// # Errors
///
/// Returns a [`serde_json::Error`] on malformed JSON.
///
/// # Panics
///
/// Panics if the JSON parses but is internally inconsistent.
pub fn calibration_from_json(json: &str) -> Result<Calibration, serde_json::Error> {
    let file: CalibrationFile = serde_json::from_str(json)?;
    Ok(file.into_calibration())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn device_roundtrip_is_exact() {
        let device = DeviceModel::synthesize(presets::melbourne14(), 77);
        let json = device_to_json(&device).unwrap();
        let restored = device_from_json(&json).unwrap();
        assert_eq!(restored, device);
    }

    #[test]
    fn device_roundtrip_other_topologies() {
        for topo in [presets::line(5), presets::tokyo20(), presets::grid(2, 3)] {
            let device = DeviceModel::synthesize(topo, 3);
            let json = device_to_json(&device).unwrap();
            assert_eq!(device_from_json(&json).unwrap(), device);
        }
    }

    #[test]
    fn calibration_roundtrip_is_exact() {
        let device = DeviceModel::synthesize(presets::melbourne14(), 8);
        let cal = device.calibration();
        let json = calibration_to_json(&cal).unwrap();
        assert_eq!(calibration_from_json(&json).unwrap(), cal);
    }

    #[test]
    fn calibration_roundtrip_preserves_generation() {
        let device = DeviceModel::synthesize(presets::line(4), 8);
        let mut cal = device.calibration();
        cal.bump_generation();
        cal.bump_generation();
        let json = calibration_to_json(&cal).unwrap();
        let restored = calibration_from_json(&json).unwrap();
        assert_eq!(restored.generation(), 2);
        assert_eq!(restored, cal);
    }

    #[test]
    fn json_is_human_readable() {
        let device = DeviceModel::synthesize(presets::line(3), 1);
        let json = device_to_json(&device).unwrap();
        assert!(json.contains("\"num_qubits\": 3"));
        assert!(json.contains("readout_p01"));
        assert!(json.contains("coherent_cx_angle"));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(device_from_json("{\"nope\": 1}").is_err());
        assert!(calibration_from_json("[]").is_err());
    }

    #[test]
    #[should_panic(expected = "cover every qubit")]
    fn inconsistent_file_panics() {
        let device = DeviceModel::synthesize(presets::line(3), 1);
        let mut file = DeviceFile::from(&device);
        file.readout_p01.pop(); // corrupt
        let _ = file.into_device();
    }
}
