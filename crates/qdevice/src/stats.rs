//! Small sampling helpers used to synthesize calibration data.
//!
//! Only `rand`'s uniform primitives are available offline, so the normal and
//! log-normal samplers are implemented here via Box-Muller.

use rand::Rng;

/// Samples a standard normal deviate via the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mean, sd)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Samples a log-normal variate whose *median* is `median` and whose spread
/// is controlled by `sigma` (the standard deviation of the underlying
/// normal). `sigma ≈ 0.8` yields roughly a 20x ratio between the 2.5th and
/// 97.5th percentile, matching the paper's reported link-error variation.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    median * (sigma * standard_normal(rng)).exp()
}

/// Clamps a sampled rate into the valid probability range `[lo, hi]`.
pub fn clamp_rate(x: f64, lo: f64, hi: f64) -> f64 {
    x.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn lognormal_median_and_positivity() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 20_000;
        let mut samples: Vec<f64> = (0..n).map(|_| lognormal(&mut rng, 0.03, 0.8)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 0.03).abs() < 0.005, "median {median}");
        // Large spread: the paper reports up to ~20x variation across links.
        let ratio = samples[(0.975 * n as f64) as usize] / samples[(0.025 * n as f64) as usize];
        assert!(ratio > 10.0, "spread ratio {ratio}");
    }

    #[test]
    fn clamp_rate_bounds() {
        assert_eq!(clamp_rate(1.5, 0.0, 1.0), 1.0);
        assert_eq!(clamp_rate(-0.1, 0.001, 1.0), 0.001);
        assert_eq!(clamp_rate(0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    fn standard_normal_is_finite() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
