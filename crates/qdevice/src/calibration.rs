//! The compiler-visible calibration view of a device.
//!
//! IBM publishes per-qubit readout error, per-qubit single-qubit gate error,
//! and per-link CX error after every calibration cycle; variation-aware
//! mappers consume exactly this table. Crucially, it contains *no*
//! information about coherent error channels or error correlations — which is
//! why a mapping that maximizes calibration-estimated ESP can still lose to
//! correlated errors at runtime (§2.6 of the paper).

use crate::topology::Edge;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-qubit and per-link error rates as a compiler would see them.
///
/// # Examples
///
/// ```
/// use qdevice::{presets, DeviceModel};
/// let device = DeviceModel::synthesize(presets::melbourne14(), 7);
/// let cal = device.calibration();
/// let e01 = cal.cx_err(0, 1).expect("edge (0,1) exists on melbourne");
/// assert!(e01 > 0.0 && e01 < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    readout_err: Vec<f64>,
    gate_1q_err: Vec<f64>,
    cx_err: BTreeMap<Edge, f64>,
    generation: u64,
}

impl Calibration {
    /// Builds a calibration table.
    ///
    /// # Panics
    ///
    /// Panics if `readout_err` and `gate_1q_err` have different lengths, if
    /// any rate is outside `[0, 1]`, or if any CX edge endpoint is out of
    /// range.
    pub fn new(readout_err: Vec<f64>, gate_1q_err: Vec<f64>, cx_err: BTreeMap<Edge, f64>) -> Self {
        assert_eq!(
            readout_err.len(),
            gate_1q_err.len(),
            "per-qubit tables must have equal length"
        );
        let n = readout_err.len() as u32;
        for &r in readout_err.iter().chain(gate_1q_err.iter()) {
            assert!((0.0..=1.0).contains(&r), "error rate {r} outside [0,1]");
        }
        for (e, &r) in &cx_err {
            assert!(e.hi() < n, "cx edge {e} out of range for {n} qubits");
            assert!((0.0..=1.0).contains(&r), "error rate {r} outside [0,1]");
        }
        Calibration {
            readout_err,
            gate_1q_err,
            cx_err,
            generation: 0,
        }
    }

    /// The calibration cycle this table belongs to.
    ///
    /// IBM-style backends recalibrate on a daily cycle; each cycle produces a
    /// new table. The generation is a monotonic counter over those cycles:
    /// freshly built tables start at generation 0, and every
    /// [`Calibration::bump_generation`] advances it. Consumers that memoize
    /// work derived from the table (notably `edm-serve`'s compilation cache)
    /// key on this value so stale results can never be served across a
    /// recalibration.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Advances to the next calibration cycle and returns the new generation.
    pub fn bump_generation(&mut self) -> u64 {
        self.generation += 1;
        self.generation
    }

    /// Returns the same table stamped with an explicit generation, used when
    /// restoring a persisted calibration.
    #[must_use]
    pub fn with_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// Number of qubits covered by the table.
    pub fn num_qubits(&self) -> u32 {
        self.readout_err.len() as u32
    }

    /// Readout (measurement) error rate of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn readout_err(&self, q: u32) -> f64 {
        self.readout_err[q as usize]
    }

    /// Single-qubit gate error rate of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn gate_1q_err(&self, q: u32) -> f64 {
        self.gate_1q_err[q as usize]
    }

    /// CX error rate on the coupling between `a` and `b`, or `None` if the
    /// pair is not calibrated (not coupled).
    pub fn cx_err(&self, a: u32, b: u32) -> Option<f64> {
        if a == b {
            return None;
        }
        self.cx_err.get(&Edge::new(a, b)).copied()
    }

    /// The calibrated CX edges and their error rates.
    pub fn cx_table(&self) -> &BTreeMap<Edge, f64> {
        &self.cx_err
    }

    /// Mean readout error across all qubits.
    pub fn mean_readout_err(&self) -> f64 {
        mean(&self.readout_err)
    }

    /// Worst readout error across all qubits.
    pub fn worst_readout_err(&self) -> f64 {
        self.readout_err.iter().copied().fold(0.0, f64::max)
    }

    /// Mean CX error across all calibrated links.
    pub fn mean_cx_err(&self) -> f64 {
        if self.cx_err.is_empty() {
            return 0.0;
        }
        self.cx_err.values().sum::<f64>() / self.cx_err.len() as f64
    }

    /// Ratio of the worst to the best CX link error (the paper reports up to
    /// ~20x on IBMQ-14).
    pub fn cx_err_spread(&self) -> f64 {
        let min = self.cx_err.values().copied().fold(f64::INFINITY, f64::min);
        let max = self.cx_err.values().copied().fold(0.0, f64::max);
        if min > 0.0 {
            max / min
        } else {
            f64::INFINITY
        }
    }

    /// A copy of this table with `qubit`'s readout error worsened by
    /// `delta` (clamped into `[0, 1]`), keeping the generation.
    ///
    /// This is the drift-injection primitive: tests and chaos tooling use
    /// it to degrade one qubit past (or deliberately just under) a
    /// [`DriftPolicy`](crate::drift::DriftPolicy) threshold without
    /// hand-rebuilding all three error tables through the accessors.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range or `delta` is not finite.
    #[must_use]
    pub fn with_degraded_readout(mut self, qubit: u32, delta: f64) -> Self {
        assert!(delta.is_finite(), "degradation delta must be finite");
        let slot = &mut self.readout_err[qubit as usize];
        *slot = (*slot + delta).clamp(0.0, 1.0);
        self
    }

    /// A copy of this table with the CX error on link `(a, b)` worsened by
    /// `delta` (clamped into `[0, 1]`), keeping the generation.
    ///
    /// # Panics
    ///
    /// Panics if the pair is not a calibrated link or `delta` is not
    /// finite.
    #[must_use]
    pub fn with_degraded_cx(mut self, a: u32, b: u32, delta: f64) -> Self {
        assert!(delta.is_finite(), "degradation delta must be finite");
        let slot = self
            .cx_err
            .get_mut(&Edge::new(a, b))
            .unwrap_or_else(|| panic!("({a}, {b}) is not a calibrated link"));
        *slot = (*slot + delta).clamp(0.0, 1.0);
        self
    }

    /// Qubits sorted from most to least reliable readout.
    pub fn qubits_by_readout(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.num_qubits()).collect();
        order.sort_by(|&a, &b| {
            self.readout_err[a as usize]
                .partial_cmp(&self.readout_err[b as usize])
                .expect("error rates are finite")
        });
        order
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Calibration {
        let mut cx = BTreeMap::new();
        cx.insert(Edge::new(0, 1), 0.02);
        cx.insert(Edge::new(1, 2), 0.08);
        Calibration::new(vec![0.05, 0.10, 0.30], vec![0.001, 0.002, 0.003], cx)
    }

    #[test]
    fn accessors() {
        let c = sample();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.readout_err(2), 0.30);
        assert_eq!(c.gate_1q_err(1), 0.002);
        assert_eq!(c.cx_err(1, 0), Some(0.02));
        assert_eq!(c.cx_err(0, 2), None);
        assert_eq!(c.cx_err(1, 1), None);
    }

    #[test]
    fn aggregates() {
        let c = sample();
        assert!((c.mean_readout_err() - 0.15).abs() < 1e-12);
        assert_eq!(c.worst_readout_err(), 0.30);
        assert!((c.mean_cx_err() - 0.05).abs() < 1e-12);
        assert!((c.cx_err_spread() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn qubit_ranking() {
        let c = sample();
        assert_eq!(c.qubits_by_readout(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_tables_rejected() {
        let _ = Calibration::new(vec![0.1], vec![0.1, 0.2], BTreeMap::new());
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn invalid_rate_rejected() {
        let _ = Calibration::new(vec![1.5], vec![0.0], BTreeMap::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cx_edge_out_of_range_rejected() {
        let mut cx = BTreeMap::new();
        cx.insert(Edge::new(0, 5), 0.1);
        let _ = Calibration::new(vec![0.1, 0.1], vec![0.0, 0.0], cx);
    }

    #[test]
    fn empty_cx_table_aggregates() {
        let c = Calibration::new(vec![0.1], vec![0.0], BTreeMap::new());
        assert_eq!(c.mean_cx_err(), 0.0);
    }

    #[test]
    fn generation_starts_at_zero_and_bumps_monotonically() {
        let mut c = sample();
        assert_eq!(c.generation(), 0);
        assert_eq!(c.bump_generation(), 1);
        assert_eq!(c.bump_generation(), 2);
        assert_eq!(c.generation(), 2);
        // Bumping does not touch the error tables.
        assert_eq!(c.readout_err(2), 0.30);
        assert_eq!(c.cx_err(0, 1), Some(0.02));
    }

    #[test]
    fn degradation_helpers_worsen_one_rate_and_keep_the_generation() {
        let c = sample().with_generation(3);
        let worse = c.clone().with_degraded_readout(1, 0.2);
        assert!((worse.readout_err(1) - 0.30).abs() < 1e-12);
        assert_eq!(worse.readout_err(0), c.readout_err(0));
        assert_eq!(worse.generation(), 3);
        // Clamps at 1.0 rather than panicking out of range.
        assert_eq!(c.clone().with_degraded_readout(2, 5.0).readout_err(2), 1.0);
        let worse_cx = c.clone().with_degraded_cx(1, 0, 0.05);
        assert!((worse_cx.cx_err(0, 1).unwrap() - 0.07).abs() < 1e-12);
        assert_eq!(worse_cx.cx_err(1, 2), c.cx_err(1, 2));
    }

    #[test]
    #[should_panic(expected = "not a calibrated link")]
    fn degrading_a_missing_link_is_rejected() {
        let _ = sample().with_degraded_cx(0, 2, 0.1);
    }

    #[test]
    fn with_generation_restamps() {
        let c = sample().with_generation(7);
        assert_eq!(c.generation(), 7);
        // Same tables, different cycle: not equal to the fresh build.
        assert_ne!(c, sample());
        assert_eq!(c, sample().with_generation(7));
    }
}
