//! Calibration-drift detection and qubit/link quarantine.
//!
//! Device error rates are not stationary: "A Case for Variability-Aware
//! Policies for NISQ-Era Quantum Computers" shows the best qubits change
//! from one calibration cycle to the next. A mapper that trusts yesterday's
//! table can concentrate trials on hardware that has silently degraded.
//! This module compares successive [`Calibration`] generations, scores
//! per-qubit and per-link drift, and quarantines the resources whose error
//! rates *worsened* past a policy threshold. The quarantine feeds the
//! mapping layer (ESP ranking and VF2 candidate filtering in `qmap`), which
//! then avoids the suspect hardware while the next cycle re-measures it.
//!
//! Drift in the improving direction is never quarantined: a qubit getting
//! better is not a hazard, and the fresh table already rewards it in ESP.

use crate::calibration::Calibration;
use crate::topology::{Edge, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Thresholds above which a worsening error rate quarantines its resource.
///
/// All thresholds are absolute increases in error rate between two
/// calibration generations (`new - old`). Defaults are tuned to the
/// synthetic IBMQ-14 model: readout errors sit in the 1–30% range and CX
/// errors in the 1–15% range, so a five-percentage-point jump is far
/// outside normal cycle-to-cycle jitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftPolicy {
    /// Readout-error increase that quarantines a qubit (default 0.05).
    pub readout_threshold: f64,
    /// Single-qubit gate-error increase that quarantines a qubit
    /// (default 0.02).
    pub gate_1q_threshold: f64,
    /// CX-error increase that quarantines a link (default 0.05).
    pub cx_threshold: f64,
}

impl Default for DriftPolicy {
    fn default() -> Self {
        DriftPolicy {
            readout_threshold: 0.05,
            gate_1q_threshold: 0.02,
            cx_threshold: 0.05,
        }
    }
}

/// Signed per-qubit drift between two calibration generations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QubitDrift {
    /// The qubit.
    pub qubit: u32,
    /// Readout-error change, `new - old` (positive = worse).
    pub readout_delta: f64,
    /// Single-qubit gate-error change, `new - old`.
    pub gate_1q_delta: f64,
}

/// Signed per-link drift between two calibration generations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDrift {
    /// The coupling link.
    pub link: Edge,
    /// CX-error change, `new - old` (positive = worse).
    pub cx_delta: f64,
}

/// The full drift picture between two calibration generations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Generation of the older table.
    pub from_generation: u64,
    /// Generation of the newer table.
    pub to_generation: u64,
    /// Per-qubit drift, ascending by qubit index (every qubit listed).
    pub qubits: Vec<QubitDrift>,
    /// Per-link drift, ascending by edge, for links calibrated in *both*
    /// generations. A link present in only one table cannot be scored.
    pub links: Vec<LinkDrift>,
}

impl DriftReport {
    /// Compares two calibration tables covering the same device.
    ///
    /// # Panics
    ///
    /// Panics if the tables cover different qubit counts.
    pub fn compare(old: &Calibration, new: &Calibration) -> DriftReport {
        assert_eq!(
            old.num_qubits(),
            new.num_qubits(),
            "calibrations cover different devices"
        );
        let qubits = (0..new.num_qubits())
            .map(|q| QubitDrift {
                qubit: q,
                readout_delta: new.readout_err(q) - old.readout_err(q),
                gate_1q_delta: new.gate_1q_err(q) - old.gate_1q_err(q),
            })
            .collect();
        let links = new
            .cx_table()
            .iter()
            .filter_map(|(&link, &rate)| {
                old.cx_table().get(&link).map(|&old_rate| LinkDrift {
                    link,
                    cx_delta: rate - old_rate,
                })
            })
            .collect();
        DriftReport {
            from_generation: old.generation(),
            to_generation: new.generation(),
            qubits,
            links,
        }
    }

    /// Largest worsening readout delta in the report (0 if nothing worsened).
    pub fn max_readout_delta(&self) -> f64 {
        self.qubits
            .iter()
            .map(|q| q.readout_delta)
            .fold(0.0, f64::max)
    }

    /// Largest worsening CX delta in the report (0 if nothing worsened).
    pub fn max_cx_delta(&self) -> f64 {
        self.links.iter().map(|l| l.cx_delta).fold(0.0, f64::max)
    }

    /// The resources whose *worsening* drift crosses the policy thresholds.
    pub fn quarantine(&self, policy: &DriftPolicy) -> Quarantine {
        let mut q = Quarantine::default();
        for qubit in &self.qubits {
            if qubit.readout_delta > policy.readout_threshold
                || qubit.gate_1q_delta > policy.gate_1q_threshold
            {
                q.add_qubit(qubit.qubit);
            }
        }
        for link in &self.links {
            if link.cx_delta > policy.cx_threshold {
                q.add_link(link.link);
            }
        }
        q
    }
}

/// A set of qubits and links the mapper should avoid this calibration cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quarantine {
    qubits: BTreeSet<u32>,
    links: BTreeSet<Edge>,
}

impl Quarantine {
    /// An empty quarantine (nothing suspected).
    pub fn new() -> Self {
        Quarantine::default()
    }

    /// True when nothing is quarantined.
    pub fn is_empty(&self) -> bool {
        self.qubits.is_empty() && self.links.is_empty()
    }

    /// Quarantines a qubit (and implicitly every link touching it).
    pub fn add_qubit(&mut self, q: u32) {
        self.qubits.insert(q);
    }

    /// Quarantines a single coupling link.
    pub fn add_link(&mut self, link: Edge) {
        self.links.insert(link);
    }

    /// The quarantined qubits, ascending.
    pub fn qubits(&self) -> &BTreeSet<u32> {
        &self.qubits
    }

    /// The individually quarantined links, ascending (links implied by
    /// quarantined qubits are not materialized here).
    pub fn links(&self) -> &BTreeSet<Edge> {
        &self.links
    }

    /// Number of quarantined qubits.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Number of individually quarantined links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// True if qubit `q` is quarantined.
    pub fn contains_qubit(&self, q: u32) -> bool {
        self.qubits.contains(&q)
    }

    /// True if the link `a`–`b` is quarantined, either directly or because
    /// an endpoint is.
    pub fn contains_link(&self, a: u32, b: u32) -> bool {
        self.qubits.contains(&a)
            || self.qubits.contains(&b)
            || (a != b && self.links.contains(&Edge::new(a, b)))
    }

    /// True when a physical footprint (a set of physical qubits, e.g. a VF2
    /// embedding) avoids every quarantined qubit.
    pub fn allows_footprint(&self, physical_qubits: &[u32]) -> bool {
        physical_qubits.iter().all(|&q| !self.contains_qubit(q))
    }

    /// The topology with every quarantined link removed (links incident to
    /// a quarantined qubit included). The qubit count is preserved so
    /// physical indices stay stable — quarantined qubits simply become
    /// isolated vertices that no connected interaction pattern can use.
    pub fn mask(&self, topology: &Topology) -> Topology {
        let kept: Vec<(u32, u32)> = topology
            .edges()
            .iter()
            .filter(|e| !self.contains_link(e.lo(), e.hi()))
            .map(|e| (e.lo(), e.hi()))
            .collect();
        Topology::new(topology.num_qubits(), &kept)
    }
}

/// Watches successive calibration generations and maintains the current
/// quarantine.
///
/// Feed every new table through [`DriftWatchdog::observe`]; the watchdog
/// diffs it against the previous one, derives the quarantine for the new
/// cycle under its [`DriftPolicy`], and remembers the new table as the next
/// baseline. The quarantine is *replaced* each cycle, not accumulated — a
/// resource is suspect while its last jump is fresh, and trusted again once
/// a later cycle re-measures it without another jump.
///
/// # Examples
///
/// ```
/// use qdevice::{presets, DeviceModel};
/// use qdevice::drift::{DriftPolicy, DriftWatchdog};
///
/// let device = DeviceModel::synthesize(presets::melbourne14(), 7);
/// let mut watchdog = DriftWatchdog::new(DriftPolicy::default());
/// assert!(watchdog.observe(&device.calibration()).is_none()); // baseline
/// // A second identical table: no drift, empty quarantine.
/// let report = watchdog.observe(&device.calibration()).expect("diffed");
/// assert_eq!(report.max_readout_delta(), 0.0);
/// assert!(watchdog.quarantine().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DriftWatchdog {
    policy: DriftPolicy,
    baseline: Option<Calibration>,
    quarantine: Quarantine,
    drift_events: u64,
}

impl DriftWatchdog {
    /// Creates a watchdog with no baseline and an empty quarantine.
    pub fn new(policy: DriftPolicy) -> Self {
        DriftWatchdog {
            policy,
            baseline: None,
            quarantine: Quarantine::new(),
            drift_events: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &DriftPolicy {
        &self.policy
    }

    /// Ingests the calibration of a new cycle.
    ///
    /// The first observation only sets the baseline and returns `None`.
    /// Every later observation returns the [`DriftReport`] against the
    /// previous cycle and replaces the quarantine with the report's
    /// threshold crossings.
    ///
    /// # Panics
    ///
    /// Panics if `cal` covers a different qubit count than the baseline.
    pub fn observe(&mut self, cal: &Calibration) -> Option<DriftReport> {
        let report = self
            .baseline
            .as_ref()
            .map(|old| DriftReport::compare(old, cal));
        if let Some(report) = &report {
            self.quarantine = report.quarantine(&self.policy);
            if !self.quarantine.is_empty() {
                self.drift_events += 1;
            }
        }
        self.baseline = Some(cal.clone());
        report
    }

    /// The quarantine derived from the most recent observation.
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// How many observations produced a non-empty quarantine.
    pub fn drift_events(&self) -> u64 {
        self.drift_events
    }

    /// Forgets the baseline and clears the quarantine (e.g. after a device
    /// swap).
    pub fn reset(&mut self) {
        self.baseline = None;
        self.quarantine = Quarantine::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn cal(readout: Vec<f64>, gate1q: Vec<f64>, cx: &[((u32, u32), f64)]) -> Calibration {
        let table: BTreeMap<Edge, f64> =
            cx.iter().map(|&((a, b), r)| (Edge::new(a, b), r)).collect();
        Calibration::new(readout, gate1q, table)
    }

    fn baseline() -> Calibration {
        cal(
            vec![0.05, 0.06, 0.07, 0.08],
            vec![0.001, 0.002, 0.001, 0.002],
            &[((0, 1), 0.02), ((1, 2), 0.03), ((2, 3), 0.04)],
        )
    }

    #[test]
    fn identical_tables_have_zero_drift() {
        let a = baseline();
        let report = DriftReport::compare(&a, &a);
        assert_eq!(report.max_readout_delta(), 0.0);
        assert_eq!(report.max_cx_delta(), 0.0);
        assert!(report.quarantine(&DriftPolicy::default()).is_empty());
    }

    #[test]
    fn worsened_readout_quarantines_the_qubit() {
        let old = baseline();
        let mut readout = vec![0.05, 0.06, 0.07, 0.08];
        readout[2] = 0.20; // +0.13 over a 0.05 threshold
        let new = cal(
            readout,
            vec![0.001, 0.002, 0.001, 0.002],
            &[((0, 1), 0.02), ((1, 2), 0.03), ((2, 3), 0.04)],
        )
        .with_generation(1);
        let report = DriftReport::compare(&old, &new);
        assert_eq!(report.from_generation, 0);
        assert_eq!(report.to_generation, 1);
        assert!((report.max_readout_delta() - 0.13).abs() < 1e-12);
        let q = report.quarantine(&DriftPolicy::default());
        assert!(q.contains_qubit(2));
        assert_eq!(q.num_qubits(), 1);
        // Every link touching the qubit is implicitly quarantined.
        assert!(q.contains_link(1, 2));
        assert!(q.contains_link(2, 3));
        assert!(!q.contains_link(0, 1));
    }

    #[test]
    fn improvement_is_never_quarantined() {
        let old = baseline();
        let new = cal(
            vec![0.01, 0.01, 0.01, 0.01], // all improved sharply
            vec![0.001, 0.002, 0.001, 0.002],
            &[((0, 1), 0.001), ((1, 2), 0.001), ((2, 3), 0.001)],
        );
        let report = DriftReport::compare(&old, &new);
        assert!(report.quarantine(&DriftPolicy::default()).is_empty());
        assert_eq!(report.max_readout_delta(), 0.0);
    }

    #[test]
    fn worsened_link_quarantines_only_that_link() {
        let old = baseline();
        let new = cal(
            vec![0.05, 0.06, 0.07, 0.08],
            vec![0.001, 0.002, 0.001, 0.002],
            &[((0, 1), 0.02), ((1, 2), 0.30), ((2, 3), 0.04)],
        );
        let q = DriftReport::compare(&old, &new).quarantine(&DriftPolicy::default());
        assert_eq!(q.num_qubits(), 0);
        assert_eq!(q.num_links(), 1);
        assert!(q.contains_link(1, 2));
        assert!(q.contains_link(2, 1));
        assert!(!q.contains_link(2, 3));
    }

    #[test]
    fn gate_error_drift_quarantines_too() {
        let old = baseline();
        let new = cal(
            vec![0.05, 0.06, 0.07, 0.08],
            vec![0.001, 0.05, 0.001, 0.002], // qubit 1 gate error jumped
            &[((0, 1), 0.02), ((1, 2), 0.03), ((2, 3), 0.04)],
        );
        let q = DriftReport::compare(&old, &new).quarantine(&DriftPolicy::default());
        assert!(q.contains_qubit(1));
    }

    #[test]
    fn mask_removes_quarantined_links_but_keeps_indices() {
        let topo = Topology::new(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut q = Quarantine::new();
        q.add_qubit(2);
        let masked = q.mask(&topo);
        assert_eq!(masked.num_qubits(), 4, "indices must stay stable");
        assert!(masked.has_edge(0, 1));
        assert!(!masked.has_edge(1, 2));
        assert!(!masked.has_edge(2, 3));

        let mut q = Quarantine::new();
        q.add_link(Edge::new(1, 2));
        let masked = q.mask(&topo);
        assert!(masked.has_edge(0, 1));
        assert!(!masked.has_edge(1, 2));
        assert!(masked.has_edge(2, 3));
    }

    #[test]
    fn footprint_filter_rejects_quarantined_qubits() {
        let mut q = Quarantine::new();
        q.add_qubit(5);
        assert!(q.allows_footprint(&[0, 1, 2]));
        assert!(!q.allows_footprint(&[0, 5, 2]));
        assert!(Quarantine::new().allows_footprint(&[5]));
    }

    #[test]
    fn watchdog_tracks_successive_generations() {
        let mut w = DriftWatchdog::new(DriftPolicy::default());
        assert!(w.observe(&baseline()).is_none());
        assert_eq!(w.drift_events(), 0);

        // Generation 1: qubit 3 degrades.
        let mut degraded = cal(
            vec![0.05, 0.06, 0.07, 0.30],
            vec![0.001, 0.002, 0.001, 0.002],
            &[((0, 1), 0.02), ((1, 2), 0.03), ((2, 3), 0.04)],
        )
        .with_generation(1);
        let report = w.observe(&degraded).expect("second observation diffs");
        assert_eq!(report.to_generation, 1);
        assert!(w.quarantine().contains_qubit(3));
        assert_eq!(w.drift_events(), 1);

        // Generation 2: stable at the new (bad but known) level — the jump
        // is no longer fresh, so the quarantine clears.
        degraded.bump_generation();
        let _ = w.observe(&degraded).expect("third observation diffs");
        assert!(w.quarantine().is_empty());
        assert_eq!(w.drift_events(), 1);
    }

    #[test]
    fn watchdog_reset_forgets_the_baseline() {
        let mut w = DriftWatchdog::new(DriftPolicy::default());
        let _ = w.observe(&baseline());
        w.reset();
        assert!(w.observe(&baseline()).is_none(), "baseline was forgotten");
        assert!(w.quarantine().is_empty());
    }

    #[test]
    #[should_panic(expected = "different devices")]
    fn mismatched_widths_rejected() {
        let a = baseline();
        let b = cal(vec![0.1], vec![0.001], &[]);
        let _ = DriftReport::compare(&a, &b);
    }

    #[test]
    fn quarantine_roundtrips_through_serde() {
        let mut q = Quarantine::new();
        q.add_qubit(3);
        q.add_link(Edge::new(0, 1));
        let json = serde_json::to_string(&q).unwrap();
        let back: Quarantine = serde_json::from_str(&json).unwrap();
        assert_eq!(back, q);
    }
}
