//! # qdevice — NISQ device models
//!
//! The device substrate for the EDM reproduction. The paper evaluates on the
//! real `ibmq-16-melbourne` machine; this crate replaces it with a synthetic
//! but behaviourally faithful model:
//!
//! - [`Topology`] — coupling graphs with BFS distances ([`presets`] provides
//!   melbourne-14, tokyo-20, lines and grids),
//! - [`DeviceModel`] — the ground-truth error parameters of a device,
//!   including *hidden* coherent error channels (per-edge systematic
//!   over-rotation and ZZ-crosstalk) and *asymmetric* readout bias that
//!   produce the correlated errors central to the paper (§2.6, Appendix A),
//! - [`Calibration`] — the compiler-visible view (error rates only, no
//!   hidden coherent information), optionally drifted relative to the truth
//!   so that compile-time ESP imperfectly predicts run-time PST (Fig. 8),
//! - [`vf2`] — exhaustive subgraph-isomorphism enumeration used by EDM to
//!   transplant a mapping onto alternative qubit subsets (§5.2),
//! - [`fdls`] — budgeted filtered depth-limited search, the scalable
//!   embedding engine for the 27/65/127-qubit heavy-hex presets,
//! - [`mapper`] — the selection layer ([`mapper::MapperSelection`]) that
//!   picks between the two engines and reports an explicit
//!   [`mapper::SearchOutcome`],
//! - [`drift`] — cycle-over-cycle calibration-drift scoring and the
//!   qubit/link quarantine that feeds variation-aware mapping.
//!
//! # Examples
//!
//! ```
//! use qdevice::{presets, DeviceModel};
//!
//! let topo = presets::melbourne14();
//! assert_eq!(topo.num_qubits(), 14);
//! let device = DeviceModel::synthesize(topo, 42);
//! let cal = device.calibration();
//! assert_eq!(cal.num_qubits(), 14);
//! ```

#![deny(missing_docs)]

mod calibration;
mod device;
pub mod drift;
pub mod fdls;
pub mod mapper;
pub mod persist;
pub mod presets;
pub mod stats;
mod topology;
pub mod vf2;

pub use calibration::Calibration;
pub use device::{DeviceModel, NoiseParams, SynthesisProfile};
pub use topology::{Edge, Topology};
