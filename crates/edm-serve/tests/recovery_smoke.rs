//! Kill-and-restart smoke test of the `edm-serve` binary with `--journal`:
//! a job acknowledged before a crash is replayed by the next process and
//! produces the same summary as an uninterrupted run.

use edm_serve::protocol::{JobSummary, Request, Response};
use edm_serve::queue::Priority;
use qcir::{qasm, Circuit};
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

fn ghz_qasm() -> String {
    let mut c = Circuit::new(3, 3);
    c.h(0).cx(0, 1).cx(1, 2).measure_all();
    qasm::to_qasm(&c)
}

fn submit() -> Request {
    Request::Submit {
        qasm: ghz_qasm(),
        shots: 512,
        seed: 7,
        priority: Priority::Normal,
        trace_id: 0,
        parent_span: 0,
    }
}

fn spawn(extra: &[&str]) -> std::process::Child {
    Command::new(env!("CARGO_BIN_EXE_edm-serve"))
        .args(["--threads", "2"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn edm-serve")
}

fn send(child: &mut std::process::Child, request: &Request) {
    let stdin = child.stdin.as_mut().expect("stdin piped");
    let line = serde_json::to_string(request).unwrap();
    writeln!(stdin, "{line}").expect("write request");
}

fn recv(reader: &mut impl BufRead) -> Response {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    serde_json::from_str(&line).expect("parse response")
}

/// Runs an uninterrupted journal-less session and returns job 1's summary.
fn reference_summary() -> JobSummary {
    let mut child = spawn(&[]);
    let mut out = BufReader::new(child.stdout.take().expect("stdout piped"));
    send(&mut child, &submit());
    assert!(matches!(recv(&mut out), Response::Accepted { id: 1, .. }));
    send(&mut child, &Request::Poll { id: 1 });
    let Response::Finished { id: 1, summary } = recv(&mut out) else {
        panic!("reference run did not finish");
    };
    send(&mut child, &Request::Shutdown);
    assert_eq!(recv(&mut out), Response::Bye);
    assert!(child.wait().expect("edm-serve exits").success());
    summary
}

#[test]
fn killed_server_replays_its_journal_on_restart() {
    let dir = std::env::temp_dir().join(format!("edm-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("serve.jsonl");
    let _ = std::fs::remove_file(&journal);
    let journal_arg = journal.to_str().unwrap();

    let mut want = reference_summary();

    // First server: accept the job, then die before ever processing it.
    // The Accepted ack proves the journal entry is on disk (the service
    // journals before acknowledging).
    let mut child = spawn(&["--journal", journal_arg]);
    let mut out = BufReader::new(child.stdout.take().expect("stdout piped"));
    send(&mut child, &submit());
    let Response::Accepted {
        id: 1,
        trace_id: acked_trace,
    } = recv(&mut out)
    else {
        panic!("first server did not accept the job");
    };
    assert_ne!(acked_trace, 0);
    child.kill().expect("kill edm-serve");
    child.wait().expect("reap edm-serve");

    // Second server: replays the journal and serves the job under its
    // original id, bit-identical to the uninterrupted run.
    let mut child = spawn(&["--journal", journal_arg]);
    let mut out = BufReader::new(child.stdout.take().expect("stdout piped"));
    send(&mut child, &Request::Poll { id: 1 });
    let Response::Finished { id: 1, summary } = recv(&mut out) else {
        panic!("restarted server did not finish the replayed job");
    };
    assert_eq!(
        summary.trace_id, acked_trace,
        "the replayed job must keep the trace id acknowledged before the crash"
    );
    // Trace ids are freshly drawn per process and latency is wall-clock,
    // so both differ across runs by construction; everything else must be
    // bit-identical.
    want.trace_id = summary.trace_id;
    want.latency_ms = summary.latency_ms;
    assert_eq!(summary, want, "replay must be bit-identical");
    send(&mut child, &Request::Shutdown);
    assert_eq!(recv(&mut out), Response::Bye);
    assert!(child.wait().expect("edm-serve exits").success());

    // Third start: the journal now records completion, so nothing replays
    // and the id is unknown.
    let mut child = spawn(&["--journal", journal_arg]);
    let mut out = BufReader::new(child.stdout.take().expect("stdout piped"));
    send(&mut child, &Request::Poll { id: 1 });
    assert_eq!(recv(&mut out), Response::Unknown { id: 1 });
    send(&mut child, &Request::Shutdown);
    assert_eq!(recv(&mut out), Response::Bye);
    assert!(child.wait().expect("edm-serve exits").success());

    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn corrupt_journal_exits_with_the_data_code() {
    let dir = std::env::temp_dir().join(format!("edm-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("corrupt.jsonl");
    std::fs::write(&journal, "{\"garbage\": true}\n{\"more\": 1}\n").unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_edm-serve"))
        .args(["--journal", journal.to_str().unwrap()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("run edm-serve");
    assert_eq!(
        output.status.code(),
        Some(65),
        "corrupt journal is EX_DATAERR"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("journal"), "stderr was: {stderr}");

    std::fs::remove_file(&journal).unwrap();
}
