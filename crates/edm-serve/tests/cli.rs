//! JSON-lines smoke test of the `edm-serve` binary: submit, poll, stats,
//! resubmit (cache hit), shutdown — one process, scripted stdin.

use edm_serve::protocol::{Request, Response};
use edm_serve::queue::Priority;
use qcir::{qasm, Circuit};
use std::io::Write;
use std::process::{Command, Stdio};

fn ghz_qasm() -> String {
    let mut c = Circuit::new(3, 3);
    c.h(0).cx(0, 1).cx(1, 2).measure_all();
    qasm::to_qasm(&c)
}

fn run_session(lines: &[Request]) -> Vec<Response> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_edm-serve"))
        .args(["--threads", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn edm-serve");
    {
        let stdin = child.stdin.as_mut().expect("stdin piped");
        for request in lines {
            let line = serde_json::to_string(request).unwrap();
            writeln!(stdin, "{line}").expect("write request");
        }
    }
    let output = child.wait_with_output().expect("edm-serve exits");
    assert!(output.status.success(), "edm-serve failed: {output:?}");
    String::from_utf8(output.stdout)
        .expect("utf8 stdout")
        .lines()
        .map(|line| serde_json::from_str(line).expect("parse response"))
        .collect()
}

#[test]
fn submit_poll_stats_shutdown_round_trip() {
    let submit = Request::Submit {
        qasm: ghz_qasm(),
        shots: 1024,
        seed: 7,
        priority: Priority::Normal,
        trace_id: 0,
        parent_span: 0,
    };
    let responses = run_session(&[
        submit.clone(),
        Request::Poll { id: 1 },
        submit.clone(),
        Request::Poll { id: 2 },
        Request::Stats,
        Request::Shutdown,
    ]);
    assert_eq!(responses.len(), 6);
    let Response::Accepted { id: 1, trace_id } = responses[0] else {
        panic!("expected Accepted for job 1, got {:?}", responses[0]);
    };
    assert_ne!(trace_id, 0, "every accepted job carries a correlation id");

    let Response::Finished { id: 1, summary } = &responses[1] else {
        panic!("expected Finished for job 1, got {:?}", responses[1]);
    };
    assert_eq!(summary.shots, 1024);
    // GHZ answer: the merged top outcome is one of the two peaks.
    assert!(
        summary.top_outcome == "000" || summary.top_outcome == "111",
        "unexpected GHZ answer {:?}",
        summary.top_outcome
    );

    assert!(matches!(responses[2], Response::Accepted { id: 2, .. }));
    assert!(matches!(responses[3], Response::Finished { id: 2, .. }));

    let Response::Stats { stats } = &responses[4] else {
        panic!("expected Stats, got {:?}", responses[4]);
    };
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.compilations, 1, "resubmission must hit the cache");
    assert_eq!(stats.cache.hits, 1);

    assert_eq!(responses[5], Response::Bye);
}

#[test]
fn bad_requests_are_reported_not_fatal() {
    let responses = run_session(&[
        Request::Submit {
            qasm: "this is not qasm".into(),
            shots: 64,
            seed: 1,
            priority: Priority::Normal,
            trace_id: 0,
            parent_span: 0,
        },
        Request::Submit {
            qasm: ghz_qasm(),
            shots: 0,
            seed: 1,
            priority: Priority::Normal,
            trace_id: 0,
            parent_span: 0,
        },
        Request::Poll { id: 42 },
        Request::Shutdown,
    ]);
    assert_eq!(responses.len(), 4);
    assert!(matches!(&responses[0], Response::Rejected { reason } if reason.contains("bad qasm")));
    assert!(
        matches!(&responses[1], Response::Rejected { reason } if reason.contains("shots must be at least 1"))
    );
    assert_eq!(responses[2], Response::Unknown { id: 42 });
    assert_eq!(responses[3], Response::Bye);
}

#[test]
fn bump_calibration_invalidates_served_cache() {
    let submit = Request::Submit {
        qasm: ghz_qasm(),
        shots: 256,
        seed: 3,
        priority: Priority::Normal,
        trace_id: 0,
        parent_span: 0,
    };
    let responses = run_session(&[
        submit.clone(),
        Request::Flush,
        Request::BumpCalibration,
        submit.clone(),
        Request::Flush,
        Request::Stats,
        Request::Shutdown,
    ]);
    assert_eq!(responses[1], Response::Processed { jobs: 1 });
    assert_eq!(responses[2], Response::Recalibrated { generation: 1 });
    assert_eq!(responses[4], Response::Processed { jobs: 1 });
    let Response::Stats { stats } = &responses[5] else {
        panic!("expected Stats, got {:?}", responses[5]);
    };
    assert_eq!(
        stats.compilations, 2,
        "generation bump must force recompile"
    );
}
