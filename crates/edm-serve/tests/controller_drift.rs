//! Closed-loop controller under injected drift — the acceptance suite
//! for the adaptive-ensemble feedback loop (DESIGN.md §14):
//!
//! - worsening a qubit inside an active member's footprint past the
//!   drift threshold quarantines it, forces a recompile, and the very
//!   next job runs on a pool that avoids the bad qubit — with the
//!   correct answer still on top of the merge,
//! - a member whose backend seed is permanently killed strikes out and
//!   is swapped for the next-ranked spare,
//! - the whole decision sequence is a pure function of the run history:
//!   re-running the scenario, or replaying it through the write-ahead
//!   journal after a crash, reproduces byte-identical results and the
//!   identical swap/reweight/recompile log.

use edm_core::{ControllerConfig, ControllerEvent, RunHealth};
use edm_serve::clock::ManualClock;
use edm_serve::dispatch::ChaosBackend;
use edm_serve::queue::{JobRequest, Priority};
use edm_serve::service::{ControllerDecision, JobService, JobState, ServeConfig};
use qcir::Circuit;
use qdevice::{presets, DeviceModel};
use qsim::NoisySimulator;
use std::sync::Arc;

const DEVICE_SEED: u64 = 11;
const RUN_SEED: u64 = 9;
const SHOTS: u64 = 2048;
const ANSWER: u64 = 0b101;

fn device() -> DeviceModel {
    DeviceModel::synthesize(presets::melbourne14(), DEVICE_SEED)
}

fn bv() -> Circuit {
    qbench::bv::bv(0b101, 3)
}

fn request(seed: u64) -> JobRequest {
    JobRequest {
        circuit: bv(),
        shots: SHOTS,
        seed,
        priority: Priority::Normal,
    }
}

/// One job per batch so run history (and therefore controller state)
/// advances between jobs exactly the way journal replay re-drives it.
fn config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        max_batch_jobs: 1,
        controller: Some(ControllerConfig::default()),
        ..ServeConfig::default()
    }
}

fn service(backend: NoisySimulator) -> JobService<NoisySimulator> {
    let d = device();
    JobService::with_clock(
        d.topology().clone(),
        d.calibration(),
        backend,
        config(),
        Arc::new(ManualClock::new()),
    )
}

fn done(svc: &JobService<impl edm_core::Backend>, id: u64) -> edm_core::EdmResult {
    match svc.poll(id) {
        Some(JobState::Done(done)) => done.result.clone(),
        other => panic!("job {id} should be done, got {other:?}"),
    }
}

/// The full drift scenario, returning everything observable so the
/// determinism test can compare two executions wholesale.
fn drift_scenario() -> (Vec<edm_core::EdmResult>, Vec<ControllerDecision>, u64) {
    let d = device();
    let mut svc = service(NoisySimulator::from_device(&d));

    // Warm the controller with a couple of healthy runs.
    let mut results = Vec::new();
    for round in 0..2 {
        let id = svc.submit(request(RUN_SEED + round)).unwrap();
        assert_eq!(svc.process_all(), 1);
        results.push(done(&svc, id));
    }
    assert_eq!(results[0].wedm.most_probable(), Some(ANSWER));

    // Drift injection: worsen the readout of a qubit every active member
    // can see (index 0 is the top-ranked member's best qubit) far past
    // the 5% drift threshold.
    let bad_qubit = results[0].members[0].member.qubits[0];
    let degraded = svc
        .calibration()
        .clone()
        .with_degraded_readout(bad_qubit, 0.2);
    svc.update_calibration(degraded);
    assert!(
        svc.is_quarantined(),
        "a 20% readout regression must trip the watchdog"
    );

    // The next job recompiles onto a pool that avoids the bad qubit.
    let id = svc.submit(request(RUN_SEED + 2)).unwrap();
    assert_eq!(svc.process_all(), 1);
    let after = done(&svc, id);
    assert_eq!(after.health, RunHealth::Full);
    for run in &after.members {
        assert!(
            !run.member.qubits.contains(&bad_qubit),
            "post-drift pool must avoid quarantined qubit {bad_qubit}"
        );
    }
    assert_eq!(
        after.wedm.most_probable(),
        Some(ANSWER),
        "merged top outcome must survive the drift"
    );
    results.push(after);

    let stats = svc.stats();
    assert!(
        stats.controller_recompiles >= 1,
        "drift must force at least one recompile, stats: {stats:?}"
    );
    (
        results,
        svc.take_controller_events(),
        stats.controller_recompiles,
    )
}

/// Mid-run calibration drift quarantines the footprint, the controller
/// recompiles, and the merge still answers correctly.
#[test]
fn drift_injection_recompiles_and_keeps_the_answer() {
    let (_, decisions, _) = drift_scenario();
    assert!(
        decisions
            .iter()
            .any(|d| matches!(d.event, ControllerEvent::Recompile { .. })),
        "decision log must record the recompile: {decisions:?}"
    );
}

/// The same drift scenario executed twice produces byte-identical
/// results and an identical decision sequence — no wall clock, no RNG.
#[test]
fn drift_decisions_are_deterministic() {
    let first = drift_scenario();
    let second = drift_scenario();
    assert_eq!(first, second);
}

/// A member whose backend seed is permanently dead keeps dragging its
/// health down until it strikes out; the controller swaps in the
/// next-ranked spare and jobs keep completing.
#[test]
fn struck_out_member_is_swapped_for_a_spare() {
    let d = device();
    // Kill plan position 1 of every run seeded RUN_SEED: seeds are
    // forked positionally, so the member in slot 1 fails each run.
    let mut chaos = ChaosBackend::new(NoisySimulator::from_device(&d), 0, 0);
    chaos.kill_seed(qsim::rngstream::fork(RUN_SEED, 1));
    let mut svc = JobService::with_clock(
        d.topology().clone(),
        d.calibration(),
        chaos,
        config(),
        Arc::new(ManualClock::new()),
    );

    let mut swap_seen = false;
    for _ in 0..8 {
        let id = svc.submit(request(RUN_SEED)).unwrap();
        assert_eq!(svc.process_all(), 1);
        let result = done(&svc, id);
        // Every run degrades (slot 1 is dead) but still answers.
        assert!(matches!(result.health, RunHealth::Degraded { .. }));
        assert_eq!(result.wedm.most_probable(), Some(ANSWER));
        swap_seen |= svc.stats().controller_swaps >= 1;
    }
    assert!(swap_seen, "8 failing runs must strike the member out");

    let decisions = svc.take_controller_events();
    let swap = decisions
        .iter()
        .find_map(|d| match &d.event {
            ControllerEvent::Swap {
                slot,
                out_member,
                in_member,
                ..
            } => Some((*slot, *out_member, *in_member)),
            _ => None,
        })
        .expect("decision log must record the swap");
    let (slot, out_member, in_member) = swap;
    assert_eq!(slot, 1, "the dead plan position is the one demoted");
    assert_eq!(out_member, 1);
    assert!(
        in_member >= config().ensemble.size,
        "replacement must come from the spare pool, got {in_member}"
    );
}

/// Crash-safety meets determinism: jobs journaled but unprocessed when
/// the service dies are replayed by a fresh instance, and the recovered
/// run — controller decisions included — is byte-identical to an
/// uninterrupted one.
#[test]
fn journal_replay_reproduces_the_swap_sequence() {
    let dir = std::env::temp_dir().join(format!(
        "edm-controller-drift-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("replay.jsonl");
    let _ = std::fs::remove_file(&path);

    let d = device();
    fn fresh(d: &DeviceModel) -> JobService<ChaosBackend<NoisySimulator<'_>>> {
        let mut chaos = ChaosBackend::new(NoisySimulator::from_device(d), 0, 0);
        chaos.kill_seed(qsim::rngstream::fork(RUN_SEED, 1));
        JobService::with_clock(
            d.topology().clone(),
            d.calibration(),
            chaos,
            config(),
            Arc::new(ManualClock::new()),
        )
    }
    const JOBS: u64 = 8;

    // Reference: uninterrupted, journal-free.
    let mut reference = fresh(&d);
    let ref_ids: Vec<u64> = (0..JOBS)
        .map(|_| reference.submit(request(RUN_SEED)).unwrap())
        .collect();
    assert_eq!(reference.process_all() as u64, JOBS);
    let want: Vec<_> = ref_ids.iter().map(|&id| done(&reference, id)).collect();
    let want_decisions = reference.take_controller_events();
    assert!(
        reference.stats().controller_swaps >= 1,
        "the scenario must contain a swap for the comparison to mean anything"
    );

    // First process: accepts the jobs, crashes before processing any.
    let ids: Vec<u64> = {
        let mut svc = fresh(&d);
        assert_eq!(svc.attach_journal(&path).unwrap(), 0);
        (0..JOBS)
            .map(|_| svc.submit(request(RUN_SEED)).unwrap())
            .collect()
        // Dropped here: all jobs journaled, none executed.
    };

    // Second process: replays and finishes them.
    let mut svc = fresh(&d);
    assert_eq!(svc.attach_journal(&path).unwrap() as u64, JOBS);
    assert_eq!(svc.process_all() as u64, JOBS);
    let got: Vec<_> = ids.iter().map(|&id| done(&svc, id)).collect();

    assert_eq!(got, want, "recovered results must be bit-identical");
    assert_eq!(
        svc.take_controller_events(),
        want_decisions,
        "replay must reproduce the identical decision sequence"
    );
    assert_eq!(
        svc.stats().controller_swaps,
        reference.stats().controller_swaps
    );

    let _ = std::fs::remove_file(&path);
}
