//! End-to-end service tests: the served path must be bit-identical to the
//! direct `EdmRunner` path, through batching, caching, and retries alike.

use edm_core::{EdmRunner, EnsembleConfig};
use edm_serve::clock::ManualClock;
use edm_serve::dispatch::FlakyBackend;
use edm_serve::queue::{JobRequest, Priority};
use edm_serve::service::{JobService, JobState, ServeConfig};
use qcir::Circuit;
use qdevice::{presets, DeviceModel};
use qmap::Transpiler;
use qsim::NoisySimulator;
use std::sync::Arc;

fn ghz(n: u32) -> Circuit {
    let mut c = Circuit::new(n, n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c.measure_all();
    c
}

fn bv(n: u32, secret: u64) -> Circuit {
    // Bernstein-Vazirani on n data qubits + 1 ancilla.
    let mut c = Circuit::new(n + 1, n);
    c.x(n).h(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n {
        if secret >> q & 1 == 1 {
            c.cx(q, n);
        }
    }
    for q in 0..n {
        c.h(q);
        c.measure(q, q);
    }
    c
}

fn request(circuit: Circuit, shots: u64, seed: u64) -> JobRequest {
    JobRequest {
        circuit,
        shots,
        seed,
        priority: Priority::Normal,
    }
}

fn config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    }
}

/// The headline determinism contract: a job served through admission,
/// cached compilation, coalesced dispatch, and result assembly equals a
/// direct `EdmRunner::run` bit for bit — full `EdmResult`, not just the
/// merged answer.
#[test]
fn served_result_is_bit_identical_to_direct_run() {
    let device = DeviceModel::synthesize(presets::melbourne14(), 42);
    let cal = device.calibration();
    let transpiler = Transpiler::new(device.topology(), &cal);
    let backend = NoisySimulator::from_device(&device);
    let runner = EdmRunner::new(&transpiler, &backend, EnsembleConfig::default()).with_threads(2);
    let direct = runner.run(&ghz(3), 4096, 17).unwrap();

    let mut svc = JobService::new(
        device.topology().clone(),
        device.calibration(),
        NoisySimulator::from_device(&device),
        config(),
    );
    let id = svc.submit(request(ghz(3), 4096, 17)).unwrap();
    svc.process_pending();
    match svc.poll(id) {
        Some(JobState::Done(done)) => assert_eq!(done.result, direct),
        other => panic!("expected Done, got {other:?}"),
    }
}

/// Several queued requests coalesce into ONE `execute_batch` dispatch, and
/// every one of them still equals its own direct run.
#[test]
fn coalesced_batch_preserves_per_job_bit_identity() {
    let device = DeviceModel::synthesize(presets::melbourne14(), 42);
    let cal = device.calibration();
    let transpiler = Transpiler::new(device.topology(), &cal);
    let backend = NoisySimulator::from_device(&device);
    let runner = EdmRunner::new(&transpiler, &backend, EnsembleConfig::default()).with_threads(2);

    let submissions = [
        (ghz(3), 2048, 5),
        (bv(3, 0b101), 4096, 91),
        (ghz(3), 1024, 7),
    ];
    let direct: Vec<_> = submissions
        .iter()
        .map(|(c, shots, seed)| runner.run(c, *shots, *seed).unwrap())
        .collect();

    let mut svc = JobService::new(
        device.topology().clone(),
        device.calibration(),
        NoisySimulator::from_device(&device),
        config(),
    );
    let ids: Vec<u64> = submissions
        .iter()
        .map(|(c, shots, seed)| svc.submit(request(c.clone(), *shots, *seed)).unwrap())
        .collect();
    assert_eq!(svc.process_pending(), 3);
    assert_eq!(svc.stats().batches, 1, "jobs must coalesce into one batch");

    for (id, expected) in ids.iter().zip(&direct) {
        match svc.poll(*id) {
            Some(JobState::Done(done)) => assert_eq!(&done.result, expected),
            other => panic!("expected Done, got {other:?}"),
        }
    }
}

/// Transient backend faults are retried transparently: the service result
/// against a flaky backend equals the result against a clean one, bit for
/// bit, and the retry counters record the recovery.
#[test]
fn retries_recover_flaky_backend_bit_identically() {
    let device = DeviceModel::synthesize(presets::melbourne14(), 42);

    let mut clean = JobService::new(
        device.topology().clone(),
        device.calibration(),
        NoisySimulator::from_device(&device),
        config(),
    );
    let id = clean.submit(request(ghz(3), 2048, 33)).unwrap();
    clean.process_pending();
    let Some(JobState::Done(expected)) = clean.poll(id) else {
        panic!("clean run must finish");
    };

    // Every member job fails once before succeeding.
    let flaky = FlakyBackend::new(NoisySimulator::from_device(&device), 1);
    let mut svc = JobService::with_clock(
        device.topology().clone(),
        device.calibration(),
        flaky,
        config(),
        Arc::new(ManualClock::new()),
    );
    let id = svc.submit(request(ghz(3), 2048, 33)).unwrap();
    svc.process_pending();
    match svc.poll(id) {
        Some(JobState::Done(done)) => assert_eq!(done.result, expected.result),
        other => panic!("expected Done, got {other:?}"),
    }
    let stats = svc.stats();
    assert!(stats.retries > 0, "recovery must have used retries");
    assert_eq!(stats.retry_exhausted, 0);
    assert_eq!(stats.failed, 0);
}

/// A backend that stays down past the retry budget surfaces a terminal
/// failure on the job — the service itself keeps running.
#[test]
fn exhausted_retries_fail_the_job_not_the_service() {
    let device = DeviceModel::synthesize(presets::melbourne14(), 42);
    // More injected failures than max_retries + 1 attempts can absorb.
    let flaky = FlakyBackend::new(NoisySimulator::from_device(&device), 100);
    let mut svc = JobService::with_clock(
        device.topology().clone(),
        device.calibration(),
        flaky,
        config(),
        Arc::new(ManualClock::new()),
    );
    let id = svc.submit(request(ghz(2), 256, 1)).unwrap();
    svc.process_pending();
    match svc.poll(id) {
        Some(JobState::Failed(reason)) => {
            assert!(reason.contains("injected fault"), "got: {reason}")
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    let stats = svc.stats();
    assert!(stats.retry_exhausted > 0);

    // The service is still healthy: a later job against the same (by now
    // warmed-up, still-failing) backend is handled without panicking, and
    // submission/polling still work.
    let id2 = svc.submit(request(ghz(2), 256, 2)).unwrap();
    svc.process_pending();
    assert!(matches!(svc.poll(id2), Some(JobState::Failed(_))));
}

/// The cache serves recompilations within a generation and never across
/// one; either way the answers stay bit-identical to direct runs.
#[test]
fn cache_reuse_and_invalidation_never_change_answers() {
    let device = DeviceModel::synthesize(presets::melbourne14(), 42);
    let cal = device.calibration();
    let transpiler = Transpiler::new(device.topology(), &cal);
    let backend = NoisySimulator::from_device(&device);
    let runner = EdmRunner::new(&transpiler, &backend, EnsembleConfig::default()).with_threads(2);
    let direct_a = runner.run(&bv(3, 0b110), 2048, 3).unwrap();
    let direct_b = runner.run(&bv(3, 0b110), 2048, 4).unwrap();

    let mut svc = JobService::new(
        device.topology().clone(),
        device.calibration(),
        NoisySimulator::from_device(&device),
        config(),
    );
    let a = svc.submit(request(bv(3, 0b110), 2048, 3)).unwrap();
    svc.process_pending();
    let b = svc.submit(request(bv(3, 0b110), 2048, 4)).unwrap();
    svc.process_pending();
    assert_eq!(svc.stats().compilations, 1, "resubmission must hit cache");
    assert_eq!(svc.stats().cache.hits, 1);

    // Same calibration values, new generation: forced recompile, and the
    // recompiled ensemble (same inputs) yields the same bits.
    svc.bump_calibration_generation();
    let c = svc.submit(request(bv(3, 0b110), 2048, 3)).unwrap();
    svc.process_pending();
    assert_eq!(svc.stats().compilations, 2);

    for (id, expected) in [(a, &direct_a), (b, &direct_b), (c, &direct_a)] {
        match svc.poll(id) {
            Some(JobState::Done(done)) => assert_eq!(&done.result, expected),
            other => panic!("expected Done, got {other:?}"),
        }
    }
}

/// High-priority jobs are dispatched before earlier-submitted normal ones
/// when the batch bound forces a choice.
#[test]
fn priority_classes_order_dispatch_under_batch_pressure() {
    let device = DeviceModel::synthesize(presets::melbourne14(), 42);
    let mut svc = JobService::new(
        device.topology().clone(),
        device.calibration(),
        NoisySimulator::from_device(&device),
        ServeConfig {
            max_batch_jobs: 1,
            ..config()
        },
    );
    let normal = svc.submit(request(ghz(2), 128, 1)).unwrap();
    let urgent = svc
        .submit(JobRequest {
            circuit: ghz(2),
            shots: 128,
            seed: 2,
            priority: Priority::High,
        })
        .unwrap();
    // One slot: the later, higher-priority job takes it.
    assert_eq!(svc.process_pending(), 1);
    assert!(matches!(svc.poll(urgent), Some(JobState::Done(_))));
    assert!(matches!(svc.poll(normal), Some(JobState::Queued)));
    assert_eq!(svc.process_pending(), 1);
    assert!(matches!(svc.poll(normal), Some(JobState::Done(_))));
}
