//! Property-based tests for the admission queue: the bound is never
//! exceeded under any interleaving of pushes and drains, and dispatch
//! order is priority-then-FIFO no matter how submissions arrive.

use edm_serve::queue::{AdmissionQueue, AdmitError, JobRequest, Priority, QueuedJob};
use proptest::prelude::*;
use qcir::Circuit;

#[derive(Debug, Clone)]
enum Op {
    Push(Priority),
    Drain(usize),
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        prop_oneof![
            Just(Priority::High),
            Just(Priority::Normal),
            Just(Priority::Low)
        ]
        .prop_map(Op::Push),
        (0usize..6).prop_map(Op::Drain),
    ];
    proptest::collection::vec(op, 1..max)
}

fn job(id: u64, priority: Priority) -> QueuedJob {
    QueuedJob {
        id,
        request: JobRequest {
            circuit: Circuit::new(1, 1),
            shots: 16,
            seed: id,
            priority,
        },
        enqueued_at_ms: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any interleaving of pushes and drains the queue never holds
    /// more than its capacity, a full queue always rejects, and no
    /// admitted job is ever lost or duplicated.
    #[test]
    fn bound_holds_under_any_interleaving(capacity in 1usize..8, script in ops(40)) {
        let mut q = AdmissionQueue::new(capacity);
        let mut next_id = 0u64;
        let mut admitted = std::collections::BTreeSet::new();
        let mut drained = Vec::new();
        for op in script {
            match op {
                Op::Push(priority) => {
                    let id = next_id;
                    next_id += 1;
                    let was_full = q.len() >= capacity;
                    match q.push(job(id, priority)) {
                        Ok(()) => {
                            prop_assert!(!was_full, "push succeeded on a full queue");
                            admitted.insert(id);
                        }
                        Err(e) => {
                            prop_assert!(was_full, "push rejected below capacity");
                            prop_assert_eq!(e, AdmitError::QueueFull { capacity });
                        }
                    }
                }
                Op::Drain(max) => {
                    let batch = q.drain_batch(max);
                    prop_assert!(batch.len() <= max);
                    drained.extend(batch.into_iter().map(|j| j.id));
                }
            }
            prop_assert!(q.len() <= capacity, "bound exceeded: {}", q.len());
        }
        // Conservation: every admitted job is exactly once either drained
        // or still waiting.
        drained.extend(q.drain_batch(usize::MAX).into_iter().map(|j| j.id));
        let mut seen = drained.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), drained.len(), "a job was drained twice");
        prop_assert_eq!(
            drained.iter().copied().collect::<std::collections::BTreeSet<_>>(),
            admitted
        );
    }

    /// Draining everything yields all High jobs before any Normal before
    /// any Low, FIFO (ascending id, since ids are assigned in push order)
    /// within each class — for every admission order.
    #[test]
    fn dispatch_order_is_priority_then_fifo(
        priorities in proptest::collection::vec(
            prop_oneof![
                Just(Priority::High),
                Just(Priority::Normal),
                Just(Priority::Low)
            ],
            0..24,
        )
    ) {
        let mut q = AdmissionQueue::new(64);
        for (id, &p) in priorities.iter().enumerate() {
            q.push(job(id as u64, p)).unwrap();
        }
        let order = q.drain_batch(usize::MAX);
        // Build the expected order directly from the definition.
        let mut expected: Vec<u64> = Vec::new();
        for class in [Priority::High, Priority::Normal, Priority::Low] {
            expected.extend(
                priorities
                    .iter()
                    .enumerate()
                    .filter(|(_, &p)| p == class)
                    .map(|(id, _)| id as u64),
            );
        }
        let got: Vec<u64> = order.iter().map(|j| j.id).collect();
        prop_assert_eq!(got, expected);
    }

    /// Partial drains compose: draining in chunks of any sizes yields the
    /// same dispatch order as one full drain.
    #[test]
    fn chunked_drains_equal_one_full_drain(
        priorities in proptest::collection::vec(
            prop_oneof![
                Just(Priority::High),
                Just(Priority::Normal),
                Just(Priority::Low)
            ],
            1..16,
        ),
        chunks in proptest::collection::vec(1usize..5, 1..20),
    ) {
        let mut whole = AdmissionQueue::new(64);
        let mut parts = AdmissionQueue::new(64);
        for (id, &p) in priorities.iter().enumerate() {
            whole.push(job(id as u64, p)).unwrap();
            parts.push(job(id as u64, p)).unwrap();
        }
        let full: Vec<u64> = whole.drain_batch(usize::MAX).iter().map(|j| j.id).collect();
        let mut piecewise = Vec::new();
        for chunk in chunks {
            piecewise.extend(parts.drain_batch(chunk).into_iter().map(|j| j.id));
        }
        piecewise.extend(parts.drain_batch(usize::MAX).into_iter().map(|j| j.id));
        prop_assert_eq!(piecewise, full);
    }
}
