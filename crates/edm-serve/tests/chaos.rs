//! Fault-injection integration suite (the "chaos" tests).
//!
//! Drives the full service stack — admission, cached compilation,
//! coalesced dispatch, retry, circuit breaker, degraded-mode merge,
//! write-ahead journal — under injected failures:
//!
//! - ~30% of backend attempts fail transiently (retries absorb them),
//! - one ensemble member's seed is killed outright (its retries exhaust
//!   and the run degrades to the surviving quorum),
//! - the service process "crashes" mid-queue and a fresh instance replays
//!   the journal bit-identically.
//!
//! Everything is deterministic: chaos decisions hash `(salt, seed,
//! attempt)`, so a failing case fails every run.

use edm_core::{build_ensemble, plan_run, RunHealth};
use edm_serve::clock::ManualClock;
use edm_serve::dispatch::ChaosBackend;
use edm_serve::queue::{JobRequest, Priority};
use edm_serve::service::{JobService, JobState, ServeConfig};
use qcir::Circuit;
use qdevice::{presets, DeviceModel};
use qmap::Transpiler;
use qsim::NoisySimulator;
use std::sync::Arc;

const DEVICE_SEED: u64 = 11;
const RUN_SEED: u64 = 9;
const SHOTS: u64 = 4096;

fn device() -> DeviceModel {
    DeviceModel::synthesize(presets::melbourne14(), DEVICE_SEED)
}

fn bv() -> Circuit {
    qbench::bv::bv(0b101, 3)
}

fn request(circuit: Circuit, shots: u64, seed: u64) -> JobRequest {
    JobRequest {
        circuit,
        shots,
        seed,
        priority: Priority::Normal,
    }
}

fn config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    }
}

/// The acceptance scenario: 30% transient chaos plus one permanently dead
/// member. The job must complete Degraded, with the merge renormalized
/// over the survivors and the correct answer still on top.
#[test]
fn chaos_run_degrades_but_answers_correctly() {
    let d = device();
    let cal = d.calibration();
    let cfg = config();

    // Precompute the plan the service will derive, to learn which backend
    // seed belongs to member 1 — that member dies permanently.
    let transpiler = Transpiler::new(d.topology(), &cal);
    let ensemble = build_ensemble(&transpiler, &bv(), &cfg.ensemble).unwrap();
    let planned_members = ensemble.len();
    assert!(planned_members >= 3, "need members to spare");
    let plan = plan_run(ensemble, SHOTS, RUN_SEED, cfg.ensemble.shot_allocation).unwrap();
    let dead_seed = plan.seeds[1];

    let mut chaos = ChaosBackend::new(NoisySimulator::from_device(&d), 30, 0xC0FFEE);
    chaos.kill_seed(dead_seed);
    let mut svc = JobService::with_clock(
        d.topology().clone(),
        cal,
        chaos,
        cfg,
        Arc::new(ManualClock::new()),
    );

    let id = svc.submit(request(bv(), SHOTS, RUN_SEED)).unwrap();
    assert_eq!(svc.process_all(), 1);

    let Some(JobState::Done(done)) = svc.poll(id) else {
        panic!("expected Done, got {:?}", svc.poll(id));
    };
    // Degraded marker with exactly the dead member dropped.
    let RunHealth::Degraded {
        failed_members,
        quorum,
    } = &done.result.health
    else {
        panic!("expected a degraded run, got {:?}", done.result.health);
    };
    assert_eq!(failed_members.len(), 1);
    assert_eq!(failed_members[0].index, 1);
    assert!(failed_members[0].error.is_transient());
    assert_eq!(*quorum, 2);
    assert_eq!(done.result.members.len(), planned_members - 1);

    // The merge is renormalized over the survivors...
    let survivor_dists: Vec<_> = done.result.members.iter().map(|m| m.dist.clone()).collect();
    assert_eq!(
        done.result.edm,
        edm_core::ProbDist::merge_uniform(&survivor_dists)
    );
    let total: f64 = done.result.edm.iter().map(|(_, p)| p).sum();
    assert!((total - 1.0).abs() < 1e-9);
    // ...and the correct answer still wins.
    assert_eq!(done.result.edm.most_probable(), Some(0b101));

    let stats = svc.stats();
    assert_eq!(stats.degraded, 1);
    assert!(stats.retries > 0, "ambient chaos should force retries");
    assert!(stats.retry_exhausted >= 1, "the dead member must exhaust");
}

/// Chaos that only ever fails transiently (no dead member) is fully
/// absorbed by the dispatcher: the result is bit-identical to a
/// chaos-free service run.
#[test]
fn transient_chaos_is_invisible_in_the_result() {
    let d = device();
    let cfg = config();

    let mut clean = JobService::with_clock(
        d.topology().clone(),
        d.calibration(),
        NoisySimulator::from_device(&d),
        cfg.clone(),
        Arc::new(ManualClock::new()),
    );
    let id = clean.submit(request(bv(), SHOTS, RUN_SEED)).unwrap();
    clean.process_all();
    let Some(JobState::Done(reference)) = clean.poll(id) else {
        panic!("clean run failed");
    };

    let chaos = ChaosBackend::new(NoisySimulator::from_device(&d), 30, 0xBEEF);
    let mut noisy = JobService::with_clock(
        d.topology().clone(),
        d.calibration(),
        chaos,
        cfg,
        Arc::new(ManualClock::new()),
    );
    let id = noisy.submit(request(bv(), SHOTS, RUN_SEED)).unwrap();
    noisy.process_all();
    let Some(JobState::Done(done)) = noisy.poll(id) else {
        panic!("chaotic run failed: {:?}", noisy.poll(id));
    };

    assert_eq!(done.result, reference.result);
    assert_eq!(done.result.health, RunHealth::Full);
    assert!(noisy.stats().retries > 0, "chaos must actually have fired");
}

/// Crash-safety: jobs accepted into the journal but unfinished when the
/// process dies are replayed by a fresh instance under their original ids
/// and seeds, and the recovered results are bit-identical to what an
/// uninterrupted run produces.
#[test]
fn journal_replay_is_bit_identical() {
    let dir = std::env::temp_dir().join(format!("edm-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("replay.jsonl");
    let _ = std::fs::remove_file(&path);
    let d = device();

    // Reference: an uninterrupted, journal-free service.
    let mut reference = JobService::with_clock(
        d.topology().clone(),
        d.calibration(),
        NoisySimulator::from_device(&d),
        config(),
        Arc::new(ManualClock::new()),
    );
    let ref_id = reference.submit(request(bv(), 2048, 21)).unwrap();
    reference.process_all();
    let Some(JobState::Done(want)) = reference.poll(ref_id) else {
        panic!("reference run failed");
    };
    let want = want.clone();

    // First process: accepts two jobs, finishes one, "crashes" (drops)
    // with the second still queued.
    let first_id;
    let crashed_id;
    {
        let mut svc = JobService::with_clock(
            d.topology().clone(),
            d.calibration(),
            NoisySimulator::from_device(&d),
            config(),
            Arc::new(ManualClock::new()),
        );
        assert_eq!(svc.attach_journal(&path).unwrap(), 0);
        first_id = svc.submit(request(bv(), 1024, 5)).unwrap();
        svc.process_all();
        assert!(matches!(svc.poll(first_id), Some(JobState::Done(_))));
        crashed_id = svc.submit(request(bv(), 2048, 21)).unwrap();
        assert!(matches!(svc.poll(crashed_id), Some(JobState::Queued)));
        // Process dies here with the job accepted but unexecuted.
    }

    // Second process: replays the journal.
    let mut svc = JobService::with_clock(
        d.topology().clone(),
        d.calibration(),
        NoisySimulator::from_device(&d),
        config(),
        Arc::new(ManualClock::new()),
    );
    let recovered = svc.attach_journal(&path).unwrap();
    assert_eq!(recovered, 1, "only the unfinished job replays");
    assert_eq!(svc.stats().recovered, 1);
    // The finished job does not reappear...
    assert!(svc.poll(first_id).is_none());
    // ...the crashed one is queued under its original id.
    assert!(matches!(svc.poll(crashed_id), Some(JobState::Queued)));

    svc.process_all();
    let Some(JobState::Done(got)) = svc.poll(crashed_id) else {
        panic!("recovered job failed: {:?}", svc.poll(crashed_id));
    };
    assert_eq!(got.result, want.result, "recovery must be bit-identical");

    // New submissions continue past every journaled id.
    let next = svc.submit(request(bv(), 64, 1)).unwrap();
    assert!(next > crashed_id);

    std::fs::remove_file(&path).unwrap();
}

/// Recovery composes with chaos: the replayed job sees the same injected
/// faults (same salt) and still lands the identical result.
#[test]
fn journal_replay_survives_chaos() {
    let dir = std::env::temp_dir().join(format!("edm-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("replay-chaos.jsonl");
    let _ = std::fs::remove_file(&path);
    let d = device();

    let mut reference = JobService::with_clock(
        d.topology().clone(),
        d.calibration(),
        NoisySimulator::from_device(&d),
        config(),
        Arc::new(ManualClock::new()),
    );
    let ref_id = reference.submit(request(bv(), 2048, 33)).unwrap();
    reference.process_all();
    let Some(JobState::Done(want)) = reference.poll(ref_id) else {
        panic!("reference run failed");
    };
    let want = want.clone();

    let id;
    {
        let mut svc = JobService::with_clock(
            d.topology().clone(),
            d.calibration(),
            ChaosBackend::new(NoisySimulator::from_device(&d), 30, 0xABAD1DEA),
            config(),
            Arc::new(ManualClock::new()),
        );
        svc.attach_journal(&path).unwrap();
        id = svc.submit(request(bv(), 2048, 33)).unwrap();
        // Crash before processing.
    }

    let mut svc = JobService::with_clock(
        d.topology().clone(),
        d.calibration(),
        ChaosBackend::new(NoisySimulator::from_device(&d), 30, 0xABAD1DEA),
        config(),
        Arc::new(ManualClock::new()),
    );
    assert_eq!(svc.attach_journal(&path).unwrap(), 1);
    svc.process_all();
    let Some(JobState::Done(got)) = svc.poll(id) else {
        panic!("recovered chaotic job failed: {:?}", svc.poll(id));
    };
    assert_eq!(got.result, want.result);

    std::fs::remove_file(&path).unwrap();
}
