//! Service observability: latency percentiles and the aggregate stats
//! snapshot a `stats` request returns.

use crate::cache::CacheStats;
use serde::{Deserialize, Serialize};

/// A bounded reservoir of per-job latencies with nearest-rank percentiles.
///
/// Keeps the most recent `capacity` samples in a ring, so percentiles track
/// current behavior rather than averaging over the service's whole life.
#[derive(Debug)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
    capacity: usize,
    next: usize,
    recorded: u64,
}

impl LatencyRecorder {
    /// Creates a recorder keeping the most recent `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "latency window must be positive");
        LatencyRecorder {
            samples: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            recorded: 0,
        }
    }

    /// Records one job latency in milliseconds.
    pub fn record(&mut self, latency_ms: u64) {
        if self.samples.len() < self.capacity {
            self.samples.push(latency_ms);
        } else {
            self.samples[self.next] = latency_ms;
        }
        self.next = (self.next + 1) % self.capacity;
        self.recorded += 1;
    }

    /// Total samples ever recorded (including ones rotated out).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The nearest-rank `p`-th percentile over the retained window, or 0
    /// with no samples. `p` is clamped to `[1, 100]`.
    ///
    /// Sorts the window; when several percentiles are needed from the same
    /// snapshot, use [`LatencyRecorder::percentiles_ms`] to sort once.
    pub fn percentile_ms(&self, p: u32) -> u64 {
        self.percentiles_ms(&[p])[0]
    }

    /// Nearest-rank percentiles for every requested `ps` entry, all
    /// computed from **one** sorted copy of the retained window (the stats
    /// snapshot path used to re-clone and re-sort the reservoir per
    /// percentile). Entries are clamped to `[1, 100]`; with no samples
    /// every answer is 0.
    pub fn percentiles_ms(&self, ps: &[u32]) -> Vec<u64> {
        if self.samples.is_empty() {
            return vec![0; ps.len()];
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        ps.iter()
            .map(|&p| {
                let p = p.clamp(1, 100) as usize;
                // Nearest rank: the smallest sample with at least p% of
                // samples at or below it.
                let rank = (p * sorted.len()).div_ceil(100);
                sorted[rank - 1]
            })
            .collect()
    }
}

impl Default for LatencyRecorder {
    /// A 1024-sample window.
    fn default() -> Self {
        LatencyRecorder::new(1024)
    }
}

/// Aggregate service counters, returned verbatim by the `stats` request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Jobs admitted to the queue over the service's life.
    pub submitted: u64,
    /// Jobs that finished with a result.
    pub completed: u64,
    /// Jobs that finished with an error.
    pub failed: u64,
    /// Submissions refused (queue full or invalid).
    pub rejected: u64,
    /// `execute_batch` dispatches issued (coalescing means this can be far
    /// below `completed`).
    pub batches: u64,
    /// Ensemble compilations actually performed (cache misses).
    pub compilations: u64,
    /// Jobs waiting in the queue right now.
    pub queue_depth: u64,
    /// Compilation cache counters.
    pub cache: CacheStats,
    /// Retry attempts performed by the dispatcher.
    pub retries: u64,
    /// Jobs that failed even after the full retry budget.
    pub retry_exhausted: u64,
    /// Jobs whose retrying was cut short by the per-job timeout.
    pub timeouts: u64,
    /// Circuit-breaker state and counters for the backend wrapper.
    pub breaker: crate::dispatch::BreakerStats,
    /// Calibration updates whose drift quarantined at least one qubit or
    /// link.
    pub drift_events: u64,
    /// Qubits currently quarantined by the drift watchdog.
    pub quarantined_qubits: u64,
    /// Links currently quarantined by the drift watchdog.
    pub quarantined_links: u64,
    /// Completed jobs whose ensemble lost members and ran degraded.
    pub degraded: u64,
    /// Jobs re-enqueued from the journal after a restart.
    pub recovered: u64,
    /// Write-ahead journal entries appended by this process.
    pub journal_appends: u64,
    /// Ensemble-slot swaps decided by the feedback controller.
    pub controller_swaps: u64,
    /// Runs whose WEDM merge weights the controller adjusted.
    pub controller_reweights: u64,
    /// Layout-pool recompilations the controller performed after a
    /// calibration-generation change.
    pub controller_recompiles: u64,
    /// Live answer-quality estimate (observed IST vs predicted ESP).
    /// Defaults to an empty estimate when parsing an older snapshot.
    #[serde(default)]
    pub quality: edm_core::QualitySnapshot,
    /// Median job latency (submit to finish) over the recent window, ms.
    pub latency_p50_ms: u64,
    /// 99th-percentile job latency over the recent window, ms.
    pub latency_p99_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_small_window() {
        let mut r = LatencyRecorder::new(16);
        for ms in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            r.record(ms);
        }
        assert_eq!(r.percentile_ms(50), 50);
        assert_eq!(r.percentile_ms(99), 100);
        assert_eq!(r.percentile_ms(100), 100);
        assert_eq!(r.percentile_ms(1), 10);
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn empty_recorder_reports_zero() {
        let r = LatencyRecorder::new(4);
        assert_eq!(r.percentile_ms(50), 0);
        assert_eq!(r.recorded(), 0);
    }

    #[test]
    fn window_rotates_out_old_samples() {
        let mut r = LatencyRecorder::new(2);
        r.record(1_000);
        r.record(5);
        r.record(7);
        // The 1000ms outlier rotated out; only {5, 7} remain.
        assert_eq!(r.percentile_ms(100), 7);
        assert_eq!(r.percentile_ms(50), 5);
        assert_eq!(r.recorded(), 3);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = LatencyRecorder::new(0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut r = LatencyRecorder::new(8);
        r.record(42);
        assert_eq!(r.percentile_ms(1), 42);
        assert_eq!(r.percentile_ms(50), 42);
        assert_eq!(r.percentile_ms(99), 42);
    }

    #[test]
    fn batched_percentiles_match_individual_calls() {
        let mut r = LatencyRecorder::new(64);
        for ms in [9, 3, 27, 81, 1, 243, 729] {
            r.record(ms);
        }
        let batch = r.percentiles_ms(&[1, 50, 99, 100]);
        assert_eq!(
            batch,
            vec![
                r.percentile_ms(1),
                r.percentile_ms(50),
                r.percentile_ms(99),
                r.percentile_ms(100),
            ]
        );
        assert!(r.percentiles_ms(&[]).is_empty());
        assert_eq!(
            LatencyRecorder::new(4).percentiles_ms(&[50, 99]),
            vec![0, 0]
        );
    }
}
