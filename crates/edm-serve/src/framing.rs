//! Incremental newline-delimited framing for the JSON-lines protocol.
//!
//! Both front ends — `edm-serve` on a pipe and the `edm-fleet` TCP layer —
//! receive requests as newline-terminated JSON objects, but neither may
//! assume a read() returns whole lines: a request split across TCP
//! segments (or pipe writes) arrives in fragments, and a hostile or buggy
//! client can send a frame with no newline at all. [`LineFramer`] absorbs
//! arbitrary byte chunks and yields complete frames, converting the two
//! protocol-level failure modes into typed frames the caller answers with
//! a reject-with-reason response instead of dropping the connection:
//!
//! - [`Frame::Oversized`] — no newline within the configured bound; the
//!   framer discards input until the next newline and then resynchronizes,
//! - [`Frame::InvalidUtf8`] — the line is not UTF-8 (JSON must be).
//!
//! Malformed *JSON* on a well-formed line is not the framer's business —
//! the caller's parse error produces the reject reason.

use std::collections::VecDeque;

/// Default cap on one frame's length in bytes (1 MiB) — far above any
/// legitimate QASM submission, far below what an unterminated stream
/// could otherwise buffer.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (newline stripped, `\r\n` tolerated). May be empty
    /// or all-whitespace; callers typically skip those.
    Line(String),
    /// The line exceeded the frame bound before a newline arrived. The
    /// framer has entered discard mode and will resynchronize at the next
    /// newline; respond with a reject-and-reason, not a hangup.
    Oversized {
        /// Bytes seen so far for the frame when the bound tripped.
        length: usize,
    },
    /// A complete line that is not valid UTF-8.
    InvalidUtf8,
}

/// An incremental line decoder: feed byte chunks in, pull frames out.
///
/// ```
/// use edm_serve::framing::{Frame, LineFramer};
/// let mut framer = LineFramer::new(64);
/// framer.feed(b"{\"Poll\":");      // partial read…
/// assert_eq!(framer.next_frame(), None);
/// framer.feed(b"{\"id\":1}}\n");   // …completed by the next segment
/// assert_eq!(
///     framer.next_frame(),
///     Some(Frame::Line("{\"Poll\":{\"id\":1}}".into()))
/// );
/// ```
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    ready: VecDeque<Frame>,
    max_frame: usize,
    /// True while skipping the remainder of an oversized frame.
    discarding: bool,
}

impl LineFramer {
    /// Creates a framer bounding each frame to `max_frame` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `max_frame == 0`.
    pub fn new(max_frame: usize) -> Self {
        assert!(max_frame > 0, "frame bound must be positive");
        LineFramer {
            buf: Vec::new(),
            ready: VecDeque::new(),
            max_frame,
            discarding: false,
        }
    }

    /// Absorbs one read's worth of bytes. Complete frames become available
    /// through [`LineFramer::next_frame`].
    pub fn feed(&mut self, bytes: &[u8]) {
        for &b in bytes {
            if b == b'\n' {
                if self.discarding {
                    // The tail of an oversized frame; the Oversized frame
                    // was already emitted when the bound tripped.
                    self.discarding = false;
                    self.buf.clear();
                    continue;
                }
                let mut line = std::mem::take(&mut self.buf);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.ready.push_back(match String::from_utf8(line) {
                    Ok(text) => Frame::Line(text),
                    Err(_) => Frame::InvalidUtf8,
                });
                continue;
            }
            if self.discarding {
                continue;
            }
            self.buf.push(b);
            // The bound is on line *content*: a terminator must never flip
            // an otherwise-acceptable line to Oversized. `\n` never enters
            // the buffer, but `\r` does until its `\n` arrives — so grant a
            // trailing `\r` sitting exactly one past the bound a one-byte
            // grace. If the next byte completes `\r\n`, the `\r` is popped
            // and the line is exactly max_frame; any other byte overflows
            // for real on the next iteration.
            let cr_grace = self.buf.len() == self.max_frame + 1 && b == b'\r';
            if self.buf.len() > self.max_frame && !cr_grace {
                self.ready.push_back(Frame::Oversized {
                    length: self.buf.len(),
                });
                self.buf.clear();
                self.discarding = true;
            }
        }
    }

    /// The next complete frame, or `None` until more bytes arrive.
    pub fn next_frame(&mut self) -> Option<Frame> {
        self.ready.pop_front()
    }

    /// Bytes buffered for the (incomplete) current frame.
    pub fn pending_len(&self) -> usize {
        self.buf.len()
    }
}

impl Default for LineFramer {
    /// A framer with the [`DEFAULT_MAX_FRAME`] bound.
    fn default() -> Self {
        LineFramer::new(DEFAULT_MAX_FRAME)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(framer: &mut LineFramer) -> Vec<Frame> {
        std::iter::from_fn(|| framer.next_frame()).collect()
    }

    #[test]
    fn single_feed_single_line() {
        let mut f = LineFramer::new(64);
        f.feed(b"hello\n");
        assert_eq!(lines(&mut f), vec![Frame::Line("hello".into())]);
    }

    #[test]
    fn frame_split_across_many_segments_reassembles() {
        let mut f = LineFramer::new(1024);
        // One request delivered a byte at a time, as a pathological TCP
        // stream could.
        let request = b"{\"Submit\":{\"qasm\":\"OPENQASM 2.0;\",\"shots\":64}}\n";
        for &b in request.iter() {
            f.feed(&[b]);
        }
        assert_eq!(
            lines(&mut f),
            vec![Frame::Line(
                "{\"Submit\":{\"qasm\":\"OPENQASM 2.0;\",\"shots\":64}}".into()
            )]
        );
    }

    #[test]
    fn several_lines_in_one_feed() {
        let mut f = LineFramer::new(64);
        f.feed(b"a\nb\r\nc\n");
        assert_eq!(
            lines(&mut f),
            vec![
                Frame::Line("a".into()),
                Frame::Line("b".into()),
                Frame::Line("c".into()),
            ]
        );
        assert_eq!(f.pending_len(), 0);
    }

    #[test]
    fn oversized_frame_rejects_then_resynchronizes() {
        let mut f = LineFramer::new(8);
        f.feed(b"way too long for the bound");
        assert_eq!(f.next_frame(), Some(Frame::Oversized { length: 9 }));
        assert_eq!(f.next_frame(), None);
        // Still discarding: more oversized tail produces nothing new.
        f.feed(b" and still going");
        assert_eq!(f.next_frame(), None);
        // The newline resynchronizes; the next line parses normally.
        f.feed(b"\nok\n");
        assert_eq!(lines(&mut f), vec![Frame::Line("ok".into())]);
    }

    #[test]
    fn line_of_exactly_the_bound_is_accepted() {
        let mut f = LineFramer::new(8);
        f.feed(b"12345678\n");
        assert_eq!(lines(&mut f), vec![Frame::Line("12345678".into())]);
    }

    #[test]
    fn line_one_past_the_bound_is_rejected() {
        let mut f = LineFramer::new(8);
        f.feed(b"123456789\n");
        assert_eq!(f.next_frame(), Some(Frame::Oversized { length: 9 }));
        // The newline already resynchronized the framer.
        f.feed(b"ok\n");
        assert_eq!(lines(&mut f), vec![Frame::Line("ok".into())]);
    }

    #[test]
    fn crlf_terminator_does_not_count_against_the_bound() {
        // Regression: a maximal line arriving with `\r\n` used to trip
        // Oversized on the `\r` even though the content fit exactly.
        let mut f = LineFramer::new(8);
        f.feed(b"12345678\r\n");
        assert_eq!(lines(&mut f), vec![Frame::Line("12345678".into())]);

        // Split between the `\r` and the `\n` — the grace must hold
        // across feed() boundaries.
        let mut f = LineFramer::new(8);
        f.feed(b"12345678\r");
        assert_eq!(f.next_frame(), None);
        f.feed(b"\n");
        assert_eq!(lines(&mut f), vec![Frame::Line("12345678".into())]);
    }

    #[test]
    fn cr_grace_is_not_a_loophole() {
        // A `\r` at the bound followed by anything but `\n` overflows.
        let mut f = LineFramer::new(8);
        f.feed(b"12345678\rx");
        assert_eq!(f.next_frame(), Some(Frame::Oversized { length: 10 }));
        // An embedded `\r` one past the bound mid-line overflows too once
        // the line keeps going.
        let mut f = LineFramer::new(8);
        f.feed(b"12345678\r\rmore\n");
        assert_eq!(f.next_frame(), Some(Frame::Oversized { length: 10 }));
        f.feed(b"ok\n");
        assert_eq!(lines(&mut f), vec![Frame::Line("ok".into())]);
    }

    #[test]
    fn invalid_utf8_is_a_typed_frame_not_a_hangup() {
        let mut f = LineFramer::new(64);
        f.feed(&[0xff, 0xfe, b'\n', b'o', b'k', b'\n']);
        assert_eq!(
            lines(&mut f),
            vec![Frame::InvalidUtf8, Frame::Line("ok".into())]
        );
    }

    #[test]
    fn empty_lines_are_yielded_for_the_caller_to_skip() {
        let mut f = LineFramer::new(64);
        f.feed(b"\n\nx\n");
        assert_eq!(
            lines(&mut f),
            vec![
                Frame::Line(String::new()),
                Frame::Line(String::new()),
                Frame::Line("x".into()),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "frame bound must be positive")]
    fn zero_bound_rejected() {
        let _ = LineFramer::new(0);
    }
}
