//! The JSON-lines wire protocol the `edm-serve` binary speaks.
//!
//! One request per line on stdin, one response per line on stdout, both
//! serde-serialized with the external enum tag as the message type. The
//! types live in the library so integration tests and future clients parse
//! the exact structs the binary emits.

use crate::queue::Priority;
use edm_core::EdmResult;
use qsim::counts::format_bitstring;
use serde::{Deserialize, Serialize};

/// A client request, one JSON object per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a circuit for ensemble execution.
    Submit {
        /// The logical circuit as OpenQASM 2.0 text.
        qasm: String,
        /// Total trial budget, split across ensemble members.
        shots: u64,
        /// Run seed; served results are bit-identical to a direct
        /// `EdmRunner::run` with the same seed.
        seed: u64,
        /// Admission priority class.
        priority: Priority,
        /// Client-supplied trace id (0 or absent: the service mints one).
        /// Stamping it here links the server's spans into the trace the
        /// client already started, across the process boundary.
        #[serde(default)]
        trace_id: u64,
        /// The client span the server's spans should parent under (0 or
        /// absent: server spans become trace roots).
        #[serde(default)]
        parent_span: u64,
    },
    /// Ask for a job's current state (drives pending work first).
    Poll {
        /// The id returned by `Accepted`.
        id: u64,
    },
    /// Process everything queued, then report how many jobs ran.
    Flush,
    /// Snapshot the service counters.
    Stats,
    /// Simulate a recalibration: bump the calibration generation, which
    /// invalidates every cached compilation.
    BumpCalibration,
    /// Snapshot the telemetry registry as JSON metric families (the same
    /// data `--metrics-port` serves as Prometheus text).
    Metrics,
    /// Snapshot per-device status (only meaningful against a fleet; a
    /// single-device server answers with its one device).
    FleetStats,
    /// Reconstruct a job's distributed trace: every span the flight
    /// recorder still holds for the job's trace id, oldest first.
    Trace {
        /// The job id returned by `Accepted`.
        id: u64,
    },
    /// Stop the service loop.
    Shutdown,
}

/// A service response, one JSON object per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The submission was admitted under this id.
    Accepted {
        /// Service-assigned job id; poll with it.
        id: u64,
        /// Correlation id stamped on the job's journal entries, spans, and
        /// final summary — stable across crash-recovery replays.
        trace_id: u64,
    },
    /// The submission was refused (backpressure or validation).
    Rejected {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// The polled job is still waiting in the queue.
    Queued {
        /// The polled id.
        id: u64,
    },
    /// The polled job finished; its result, summarized.
    Finished {
        /// The polled id.
        id: u64,
        /// Result summary (counts stay server-side; the summary carries
        /// the answer and its confidence).
        summary: JobSummary,
    },
    /// The polled job ran and failed.
    Failed {
        /// The polled id.
        id: u64,
        /// Terminal error text.
        reason: String,
    },
    /// The polled id was never issued.
    Unknown {
        /// The polled id.
        id: u64,
    },
    /// Counter snapshot.
    Stats {
        /// The counters at the time of the request (boxed: the snapshot
        /// is by far the largest variant and would bloat every Response).
        stats: Box<crate::stats::ServiceStats>,
    },
    /// Telemetry registry snapshot, one family per registered metric.
    Metrics {
        /// Every registered metric with its current value.
        families: Vec<MetricFamily>,
    },
    /// Per-device fleet snapshot: one entry per virtual device, in stable
    /// device-index order.
    FleetStats {
        /// Every fleet member's routing-relevant status.
        devices: Vec<DeviceStatus>,
    },
    /// A job's reconstructed trace.
    Trace {
        /// The queried job id.
        id: u64,
        /// The job's correlation/trace id.
        trace_id: u64,
        /// Every retained span of that trace, in completion order. Spans
        /// evicted from the flight recorder are absent (the `--trace-out`
        /// file keeps the durable copy).
        spans: Vec<SpanInfo>,
    },
    /// A `Flush` completed.
    Processed {
        /// How many queued jobs were dispatched.
        jobs: u64,
    },
    /// The new calibration generation after a `BumpCalibration`.
    Recalibrated {
        /// The now-current generation.
        generation: u64,
    },
    /// The request line could not be handled.
    Error {
        /// What went wrong (parse failure, unsupported request).
        reason: String,
    },
    /// Acknowledges `Shutdown`; the service exits after sending it.
    Bye,
}

/// One fleet member's status as the scheduler sees it: everything the
/// router consults (health, depth) plus the device's full counter
/// snapshot, so `FleetStats` distinguishes fleet members the way labeled
/// `/metrics` families do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceStatus {
    /// Stable device index within the fleet (the routing tie-break key).
    pub device: u64,
    /// Human-readable device name (topology preset + seed).
    pub name: String,
    /// Jobs waiting in this device's admission queue.
    pub queue_depth: u64,
    /// The device breaker's admission state right now.
    pub breaker: crate::dispatch::BreakerState,
    /// True when the drift watchdog is quarantining any of the device's
    /// qubits or links.
    pub quarantined: bool,
    /// The device's live answer-quality estimate (observed IST vs
    /// predicted ESP). Defaults to an empty estimate when talking to an
    /// older server.
    #[serde(default)]
    pub quality: edm_core::QualitySnapshot,
    /// The device's full `JobService` counter snapshot.
    pub stats: crate::stats::ServiceStats,
}

/// One telemetry span on the wire, mirroring
/// `edm_telemetry::trace::SpanRecord` with an owned name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanInfo {
    /// Span id, unique within the process that recorded it.
    pub id: u64,
    /// Parent span id (0 for a trace root).
    pub parent_id: u64,
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// Stage name (`serve_plan`, `pool_slice`, ...).
    pub name: String,
    /// Wall time spent in the span, microseconds.
    pub elapsed_us: u64,
}

impl From<&edm_telemetry::trace::SpanRecord> for SpanInfo {
    fn from(record: &edm_telemetry::trace::SpanRecord) -> Self {
        SpanInfo {
            id: record.id,
            parent_id: record.parent_id,
            trace_id: record.trace_id,
            name: record.name.to_string(),
            elapsed_us: record.elapsed_us,
        }
    }
}

/// One telemetry metric on the wire, mirroring
/// `edm_telemetry::metrics::MetricSnapshot` with owned strings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricFamily {
    /// A monotone counter.
    Counter {
        /// Metric name (`edm_<crate>_<name>_<unit>`).
        name: String,
        /// Current value.
        value: u64,
    },
    /// An up-down gauge.
    Gauge {
        /// Metric name.
        name: String,
        /// Current value.
        value: i64,
    },
    /// A log₂-bucketed histogram. Only finite buckets travel; the implicit
    /// `+Inf` count is `count` minus the sum of `buckets`.
    Histogram {
        /// Metric name.
        name: String,
        /// Observations recorded.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Non-cumulative counts for buckets with upper bounds 1, 2, 4, ….
        buckets: Vec<u64>,
    },
}

impl MetricFamily {
    /// Converts a registry snapshot entry for the wire. Labeled series
    /// carry their labels in the name, Prometheus-style
    /// (`name{device="d0"}`), so a fleet's per-device families stay
    /// distinguishable without changing the wire shape.
    pub fn from_snapshot(snapshot: &edm_telemetry::metrics::MetricSnapshot) -> Self {
        use edm_telemetry::metrics::MetricSnapshot;
        let wire_name = |name: &str, labels: &str| {
            if labels.is_empty() {
                name.to_string()
            } else {
                format!("{name}{{{labels}}}")
            }
        };
        match snapshot {
            MetricSnapshot::Counter {
                name,
                labels,
                value,
                ..
            } => MetricFamily::Counter {
                name: wire_name(name, labels),
                value: *value,
            },
            MetricSnapshot::Gauge {
                name,
                labels,
                value,
                ..
            } => MetricFamily::Gauge {
                name: wire_name(name, labels),
                value: *value,
            },
            MetricSnapshot::Histogram {
                name,
                labels,
                snapshot,
                ..
            } => MetricFamily::Histogram {
                name: wire_name(name, labels),
                count: snapshot.count,
                sum: snapshot.sum,
                buckets: snapshot.buckets.clone(),
            },
        }
    }

    /// The family's metric name.
    pub fn name(&self) -> &str {
        match self {
            MetricFamily::Counter { name, .. }
            | MetricFamily::Gauge { name, .. }
            | MetricFamily::Histogram { name, .. } => name,
        }
    }
}

/// The client-facing digest of a finished job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSummary {
    /// The finished job's id.
    pub id: u64,
    /// The correlation id assigned at submission (recovered from the
    /// journal for replayed jobs).
    pub trace_id: u64,
    /// Ensemble members executed.
    pub members: u64,
    /// Total shots actually distributed.
    pub shots: u64,
    /// The most probable EDM outcome, as a bitstring (MSB first).
    pub top_outcome: String,
    /// The EDM probability of `top_outcome`.
    pub top_probability: f64,
    /// True when members failed permanently and the result was merged over
    /// the surviving quorum (see `edm_core::RunHealth`).
    pub degraded: bool,
    /// How many planned members were dropped (0 unless `degraded`).
    pub failed_members: u64,
    /// Submit-to-finish latency in milliseconds.
    pub latency_ms: u64,
}

impl JobSummary {
    /// Digests a finished [`EdmResult`] for the wire.
    pub fn from_result(id: u64, trace_id: u64, result: &EdmResult, latency_ms: u64) -> Self {
        let shots = result.members.iter().map(|m| m.counts.shots()).sum();
        let (top_outcome, top_probability) = match result.edm.most_probable() {
            Some(outcome) => (
                format_bitstring(outcome, result.edm.num_clbits()),
                result.edm.probability(outcome),
            ),
            None => (String::new(), 0.0),
        };
        let failed_members = match &result.health {
            edm_core::RunHealth::Full => 0,
            edm_core::RunHealth::Degraded { failed_members, .. } => failed_members.len() as u64,
        };
        JobSummary {
            id,
            trace_id,
            members: result.members.len() as u64,
            shots,
            top_outcome,
            top_probability,
            degraded: result.is_degraded(),
            failed_members,
            latency_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_json() {
        let req = Request::Submit {
            qasm: "OPENQASM 2.0;".into(),
            shots: 4096,
            seed: 7,
            priority: Priority::High,
            trace_id: 0xfeed,
            parent_span: 12,
        };
        let line = serde_json::to_string(&req).unwrap();
        assert!(line.contains("\"Submit\""));
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn submit_without_trace_fields_stays_wire_compatible() {
        // A pre-tracing client omits trace_id/parent_span entirely; the
        // fields default to 0 ("mint one server-side, no remote parent").
        let line = r#"{"Submit":{"qasm":"OPENQASM 2.0;","shots":64,"seed":1,"priority":"Normal"}}"#;
        match serde_json::from_str::<Request>(line).unwrap() {
            Request::Submit {
                trace_id,
                parent_span,
                shots,
                ..
            } => {
                assert_eq!(trace_id, 0);
                assert_eq!(parent_span, 0);
                assert_eq!(shots, 64);
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn trace_response_roundtrips_through_json() {
        let resp = Response::Trace {
            id: 4,
            trace_id: 0xabc,
            spans: vec![SpanInfo {
                id: 2,
                parent_id: 1,
                trace_id: 0xabc,
                name: "pool_slice".into(),
                elapsed_us: 180,
            }],
        };
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
        assert_eq!(
            serde_json::from_str::<Request>(r#"{"Trace":{"id":4}}"#).unwrap(),
            Request::Trace { id: 4 }
        );
    }

    #[test]
    fn response_roundtrips_through_json() {
        let resp = Response::Finished {
            id: 3,
            summary: JobSummary {
                id: 3,
                trace_id: 901,
                members: 4,
                shots: 8192,
                top_outcome: "101".into(),
                top_probability: 0.75,
                degraded: false,
                failed_members: 0,
                latency_ms: 12,
            },
        };
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn metric_families_roundtrip_through_json() {
        let families = vec![
            MetricFamily::Counter {
                name: "edm_serve_cache_hits_total".into(),
                value: 9,
            },
            MetricFamily::Gauge {
                name: "edm_serve_queue_depth".into(),
                value: -1,
            },
            MetricFamily::Histogram {
                name: "edm_serve_dispatch_us".into(),
                count: 3,
                sum: 70,
                buckets: vec![1, 0, 2],
            },
        ];
        let resp = Response::Metrics {
            families: families.clone(),
        };
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
        assert_eq!(families[0].name(), "edm_serve_cache_hits_total");
        assert_eq!(families[2].name(), "edm_serve_dispatch_us");
        assert_eq!(
            serde_json::from_str::<Request>("\"Metrics\"").unwrap(),
            Request::Metrics
        );
    }

    #[test]
    fn labeled_snapshots_ride_the_wire_name() {
        edm_telemetry::set_enabled(true);
        let registry = edm_telemetry::metrics::Registry::new();
        registry
            .counter_with("edm_proto_fleet_jobs_total", "Jobs", &[("device", "d1")])
            .add(2);
        let families: Vec<MetricFamily> = registry
            .snapshot()
            .iter()
            .map(MetricFamily::from_snapshot)
            .collect();
        assert_eq!(families.len(), 1);
        assert_eq!(
            families[0].name(),
            "edm_proto_fleet_jobs_total{device=\"d1\"}"
        );
    }

    #[test]
    fn fleet_stats_roundtrips_through_json() {
        use crate::queue::{JobRequest, Priority};
        use crate::service::{JobService, ServeConfig};
        use qdevice::{presets, DeviceModel};
        use qsim::NoisySimulator;

        let device = DeviceModel::synthesize(presets::melbourne14(), 3);
        let backend = NoisySimulator::from_device(&device);
        let mut svc = JobService::new(
            device.topology().clone(),
            device.calibration(),
            backend,
            ServeConfig {
                threads: 2,
                ..ServeConfig::default()
            },
        );
        let mut bell = qcir::Circuit::new(2, 2);
        bell.h(0).cx(0, 1).measure_all();
        svc.submit(JobRequest {
            circuit: bell,
            shots: 64,
            seed: 1,
            priority: Priority::Normal,
        })
        .unwrap();

        let resp = Response::FleetStats {
            devices: vec![DeviceStatus {
                device: 0,
                name: "melbourne14#3".into(),
                queue_depth: svc.queue_depth() as u64,
                breaker: svc.breaker_state(),
                quarantined: false,
                quality: svc.quality(),
                stats: svc.stats(),
            }],
        };
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
        assert_eq!(
            serde_json::from_str::<Request>("\"FleetStats\"").unwrap(),
            Request::FleetStats
        );
    }

    #[test]
    fn unit_requests_parse_from_bare_strings() {
        // Externally tagged unit variants serialize as plain strings, which
        // is what a shell one-liner will type.
        let line = serde_json::to_string(&Request::Shutdown).unwrap();
        assert_eq!(line, "\"Shutdown\"");
        assert_eq!(
            serde_json::from_str::<Request>("\"Flush\"").unwrap(),
            Request::Flush
        );
    }
}
