//! The bounded admission queue: priority classes and backpressure.
//!
//! A service that accepts unboundedly eventually falls over; one that
//! blocks producers deadlocks them. This queue does neither — when full it
//! rejects with a reason the caller can surface, and the service drains it
//! in priority order, coalescing a batch of jobs into one dispatch.

use qcir::Circuit;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Admission priority class, highest first.
///
/// The derived order makes `High < Normal < Low`, i.e. sorting ascending
/// yields dispatch order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub enum Priority {
    /// Dispatched before everything else (interactive callers).
    High,
    /// The default class.
    #[default]
    Normal,
    /// Dispatched only when nothing higher waits (bulk sweeps).
    Low,
}

impl Priority {
    const COUNT: usize = 3;

    fn class(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// One job submission: what to run and under which budget.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// The logical circuit to compile and execute.
    pub circuit: Circuit,
    /// Total trial budget, split across ensemble members.
    pub shots: u64,
    /// The run seed; the service forks member seeds from it exactly as
    /// `EdmRunner` does, so results are bit-identical to a direct run.
    pub seed: u64,
    /// Admission priority class.
    pub priority: Priority,
}

/// A request that passed admission, stamped with its identity and arrival
/// time.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedJob {
    /// Service-assigned job id.
    pub id: u64,
    /// The admitted request.
    pub request: JobRequest,
    /// Service-clock arrival time in milliseconds (latency accounting).
    pub enqueued_at_ms: u64,
}

/// Why admission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at capacity; resubmit later.
    QueueFull {
        /// The configured bound that was hit.
        capacity: usize,
    },
    /// The request failed validation before touching the queue.
    Invalid(String),
    /// The write-ahead journal could not record the admission, so the job
    /// was refused rather than accepted without crash protection.
    Journal(String),
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} jobs); resubmit later")
            }
            AdmitError::Invalid(reason) => write!(f, "invalid request: {reason}"),
            AdmitError::Journal(reason) => write!(f, "journal write failed: {reason}"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// A bounded multi-class FIFO queue.
///
/// Within a class jobs leave in arrival order; across classes higher
/// priority always leaves first. The bound covers all classes together, so
/// a flood of `Low` jobs can still exert backpressure on `High` submitters
/// — by design: total memory is what the bound protects.
pub struct AdmissionQueue {
    capacity: usize,
    classes: [VecDeque<QueuedJob>; Priority::COUNT],
}

impl AdmissionQueue {
    /// Creates a queue bounded to `capacity` waiting jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — such a queue would reject everything.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        AdmissionQueue {
            capacity,
            classes: Default::default(),
        }
    }

    /// Admits a job, or rejects it with backpressure when full.
    ///
    /// # Errors
    ///
    /// Returns [`AdmitError::QueueFull`] when the queue is at capacity; the
    /// job is NOT enqueued and the caller decides whether to retry later.
    pub fn push(&mut self, job: QueuedJob) -> Result<(), AdmitError> {
        if self.len() >= self.capacity {
            return Err(AdmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        self.classes[job.request.priority.class()].push_back(job);
        Ok(())
    }

    /// Jobs currently waiting, across all classes.
    pub fn len(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// True when nothing waits.
    pub fn is_empty(&self) -> bool {
        self.classes.iter().all(VecDeque::is_empty)
    }

    /// Waiting jobs per class, highest priority first.
    pub fn depth_by_class(&self) -> [usize; Priority::COUNT] {
        [
            self.classes[0].len(),
            self.classes[1].len(),
            self.classes[2].len(),
        ]
    }

    /// Removes up to `max` jobs in dispatch order: all `High` before any
    /// `Normal` before any `Low`, FIFO within each class.
    pub fn drain_batch(&mut self, max: usize) -> Vec<QueuedJob> {
        let mut batch = Vec::new();
        for class in &mut self.classes {
            while batch.len() < max {
                match class.pop_front() {
                    Some(job) => batch.push(job),
                    None => break,
                }
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, priority: Priority) -> QueuedJob {
        QueuedJob {
            id,
            request: JobRequest {
                circuit: Circuit::new(1, 1),
                shots: 16,
                seed: id,
                priority,
            },
            enqueued_at_ms: 0,
        }
    }

    #[test]
    fn full_queue_rejects_with_reason() {
        let mut q = AdmissionQueue::new(2);
        q.push(job(1, Priority::Normal)).unwrap();
        q.push(job(2, Priority::High)).unwrap();
        let err = q.push(job(3, Priority::High)).unwrap_err();
        assert_eq!(err, AdmitError::QueueFull { capacity: 2 });
        assert!(err.to_string().contains("queue full (2 jobs)"));
        // The rejected job vanished; the queue is intact.
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drains_in_priority_then_fifo_order() {
        let mut q = AdmissionQueue::new(8);
        for (id, p) in [
            (1, Priority::Low),
            (2, Priority::Normal),
            (3, Priority::High),
            (4, Priority::Normal),
            (5, Priority::High),
        ] {
            q.push(job(id, p)).unwrap();
        }
        let ids: Vec<u64> = q.drain_batch(8).iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![3, 5, 2, 4, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_respects_batch_bound() {
        let mut q = AdmissionQueue::new(8);
        for id in 1..=5 {
            q.push(job(id, Priority::Normal)).unwrap();
        }
        let first = q.drain_batch(2);
        assert_eq!(first.iter().map(|j| j.id).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(q.len(), 3);
        let rest = q.drain_batch(100);
        assert_eq!(rest.len(), 3);
    }

    #[test]
    fn depth_by_class_reports_all_classes() {
        let mut q = AdmissionQueue::new(8);
        q.push(job(1, Priority::Low)).unwrap();
        q.push(job(2, Priority::Low)).unwrap();
        q.push(job(3, Priority::High)).unwrap();
        assert_eq!(q.depth_by_class(), [1, 0, 2]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn freed_capacity_admits_again() {
        let mut q = AdmissionQueue::new(1);
        q.push(job(1, Priority::Normal)).unwrap();
        assert!(q.push(job(2, Priority::Normal)).is_err());
        q.drain_batch(1);
        q.push(job(2, Priority::Normal)).unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = AdmissionQueue::new(0);
    }

    #[test]
    fn priority_order_is_dispatch_order() {
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
        assert_eq!(Priority::default(), Priority::Normal);
    }
}
