//! The compilation cache: memoized compiled ensembles.
//!
//! VF2 enumeration + ESP ranking is by far the most expensive step of
//! serving a job, and it depends only on `(circuit, topology, calibration
//! cycle)`. The cache keys on exactly those three — a stable circuit
//! fingerprint, a stable topology fingerprint, and the calibration
//! generation — so resubmitting a circuit within one calibration cycle
//! reuses the compiled ensemble, while a generation bump can never serve a
//! stale compilation (the old generation's keys simply stop matching).

use edm_core::EnsembleMember;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// What a compilation is memoized under.
///
/// All three components are content-derived or monotonic, so equal keys
/// imply the compiled ensemble would come out identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CacheKey {
    /// [`qcir::Circuit::fingerprint`] of the logical circuit.
    pub circuit: u64,
    /// [`qdevice::Topology::fingerprint`] of the device coupling graph.
    pub topology: u64,
    /// [`qdevice::Calibration::generation`] the compilation used.
    pub generation: u64,
}

/// Counter snapshot of a [`CompileCache`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries purged because their calibration generation went stale.
    pub invalidated: u64,
    /// Live entries right now.
    pub entries: u64,
    /// Maximum live entries.
    pub capacity: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache, or 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    ensemble: Arc<Vec<EnsembleMember>>,
    last_used: u64,
}

/// An LRU-bounded map from [`CacheKey`] to a compiled ensemble.
///
/// Entries are shared out as `Arc`s so a hit costs a pointer clone, not an
/// ensemble clone. Not internally synchronized — the service owns it behind
/// one `&mut`.
pub struct CompileCache {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<CacheKey, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidated: u64,
}

impl CompileCache {
    /// Creates a cache bounded to `capacity` live entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a zero-capacity cache would turn every
    /// insert into an immediate eviction, which is never what a caller
    /// wants; disable caching by not consulting the cache instead.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        CompileCache {
            capacity,
            tick: 0,
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidated: 0,
        }
    }

    /// Looks up a compiled ensemble, refreshing its LRU position on hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<Vec<EnsembleMember>>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.ensemble))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a compiled ensemble, evicting the least-recently-used entry
    /// if the cache is full. Returns the shared handle.
    pub fn insert(
        &mut self,
        key: CacheKey,
        ensemble: Vec<EnsembleMember>,
    ) -> Arc<Vec<EnsembleMember>> {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("cache is non-empty when at capacity");
            self.entries.remove(&lru);
            self.evictions += 1;
        }
        let shared = Arc::new(ensemble);
        self.entries.insert(
            key,
            Entry {
                ensemble: Arc::clone(&shared),
                last_used: self.tick,
            },
        );
        shared
    }

    /// Purges every entry whose generation differs from `generation`.
    ///
    /// Correctness never depends on this — stale generations stop matching
    /// by key construction — but purging returns their slots to the LRU
    /// budget immediately after a recalibration instead of waiting for
    /// eviction pressure. Returns how many entries were purged.
    pub fn retain_generation(&mut self, generation: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|k, _| k.generation == generation);
        let purged = before - self.entries.len();
        self.invalidated += purged as u64;
        purged
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            invalidated: self.invalidated,
            entries: self.entries.len() as u64,
            capacity: self.capacity as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Circuit;

    fn member(tag: u32) -> EnsembleMember {
        EnsembleMember {
            physical: Circuit::new(tag, tag),
            esp: 0.5,
            qubits: vec![tag],
            assignment: vec![tag],
            inverted_measurement: false,
        }
    }

    fn key(circuit: u64, generation: u64) -> CacheKey {
        CacheKey {
            circuit,
            topology: 99,
            generation,
        }
    }

    #[test]
    fn miss_then_hit_counts() {
        let mut c = CompileCache::new(4);
        assert!(c.get(&key(1, 0)).is_none());
        c.insert(key(1, 0), vec![member(1)]);
        let got = c.get(&key(1, 0)).expect("inserted entry");
        assert_eq!(got.len(), 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = CompileCache::new(2);
        c.insert(key(1, 0), vec![member(1)]);
        c.insert(key(2, 0), vec![member(2)]);
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(c.get(&key(1, 0)).is_some());
        c.insert(key(3, 0), vec![member(3)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get(&key(1, 0)).is_some());
        assert!(c.get(&key(2, 0)).is_none(), "LRU entry must be gone");
        assert!(c.get(&key(3, 0)).is_some());
    }

    #[test]
    fn reinserting_same_key_does_not_evict() {
        let mut c = CompileCache::new(2);
        c.insert(key(1, 0), vec![member(1)]);
        c.insert(key(2, 0), vec![member(2)]);
        c.insert(key(1, 0), vec![member(1), member(1)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&key(1, 0)).unwrap().len(), 2);
    }

    #[test]
    fn generation_change_misses_and_purge_reclaims() {
        let mut c = CompileCache::new(8);
        c.insert(key(1, 0), vec![member(1)]);
        c.insert(key(2, 0), vec![member(2)]);
        // New generation: same circuit, different key -> miss.
        assert!(c.get(&key(1, 1)).is_none());
        assert_eq!(c.retain_generation(1), 2);
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidated, 2);
        // The old generation's entries are gone entirely.
        assert!(c.get(&key(1, 0)).is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = CompileCache::new(0);
    }

    #[test]
    fn hit_rate_zero_before_any_lookup() {
        let c = CompileCache::new(1);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }
}
