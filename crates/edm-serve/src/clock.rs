//! Time abstraction so retry backoff and latency accounting are testable.
//!
//! The dispatcher and service consult a [`Clock`] instead of
//! `std::time::Instant` directly; tests swap in [`ManualClock`] to make
//! backoff schedules and timeouts deterministic without real sleeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A monotonic millisecond clock that can also block.
pub trait Clock: Send + Sync {
    /// Milliseconds elapsed since some fixed origin.
    fn now_ms(&self) -> u64;

    /// Blocks the caller for `ms` milliseconds.
    fn sleep_ms(&self, ms: u64);
}

/// The production clock: `Instant`-based monotonic time and real sleeping.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a clock whose origin is "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// A test clock: time only advances when something "sleeps", and every
/// sleep is recorded so tests can assert the exact backoff schedule.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
    sleeps: Mutex<Vec<u64>>,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// The sleep durations observed so far, in call order.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned (a prior panic mid-sleep).
    pub fn sleeps(&self) -> Vec<u64> {
        self.sleeps.lock().expect("clock lock poisoned").clone()
    }

    /// Advances time without recording a sleep.
    pub fn advance_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_ms(&self, ms: u64) {
        self.sleeps.lock().expect("clock lock poisoned").push(ms);
        self.now.fetch_add(ms, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_on_sleep_and_records() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.sleep_ms(10);
        c.advance_ms(5);
        c.sleep_ms(40);
        assert_eq!(c.now_ms(), 55);
        assert_eq!(c.sleeps(), vec![10, 40]);
    }
}
