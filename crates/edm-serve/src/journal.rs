//! Crash-safe job recovery: a JSON-lines write-ahead journal.
//!
//! The service appends one [`JournalEntry`] line per state transition —
//! `Accepted` when a job passes admission (before any work), `Completed` /
//! `Failed` when it finishes — flushing after every line. On restart,
//! [`Journal::open`] replays the file: accepted-but-unfinished jobs are the
//! crash's in-flight work, and because every entry preserves the job's id
//! and seed, re-running them produces results bit-identical to the run the
//! crash interrupted.
//!
//! Two corruption cases are deliberately distinguished:
//!
//! - a **truncated final line** (no terminating newline, unparseable) is
//!   the signature of dying mid-append and is silently dropped — losing
//!   the entry being written at the instant of the crash is the WAL
//!   contract, and the job it described was never acknowledged;
//! - an **unparseable line anywhere else** means the file was damaged at
//!   rest, which replay refuses to paper over: it returns
//!   [`JournalError::Corrupt`] so the operator sees a data error
//!   (exit code 65) instead of quietly dropped jobs.

use crate::queue::{JobRequest, Priority};
use qcir::Circuit;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// One journaled state transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEntry {
    /// A job passed admission. Everything needed to re-run it bit-identically
    /// is recorded before the service does any work on it.
    Accepted {
        /// The service-assigned id, preserved across restarts.
        id: u64,
        /// The correlation id stamped on every response, journal entry, and
        /// telemetry span for this job — preserved across restarts so a
        /// replayed job is traceable back to its original submission.
        trace_id: u64,
        /// The logical circuit.
        circuit: Circuit,
        /// Total trial budget.
        shots: u64,
        /// The run seed — the key to bit-identical recovery.
        seed: u64,
        /// Admission priority class.
        priority: Priority,
    },
    /// The job finished with a result; replay need not re-run it.
    Completed {
        /// The finished job's id.
        id: u64,
    },
    /// The job finished with a terminal error; replay need not re-run it.
    Failed {
        /// The failed job's id.
        id: u64,
    },
}

/// Why the journal could not be read or written.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem trouble opening, reading, or appending.
    Io(std::io::Error),
    /// A non-final line failed to parse: the file is damaged at rest.
    Corrupt {
        /// 1-based line number of the first bad line.
        line: usize,
        /// The parse failure.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// An append-only JSON-lines journal, flushed per entry.
#[derive(Debug)]
pub struct Journal {
    writer: BufWriter<File>,
    path: PathBuf,
    appended: u64,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, first replaying
    /// whatever survived the last run. Returns the journal ready for
    /// appending plus the replayed entries in append order.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem trouble; [`JournalError::Corrupt`]
    /// when a non-final line fails to parse (a truncated final line is
    /// dropped, not an error — see the module docs).
    pub fn open(path: impl AsRef<Path>) -> Result<(Journal, Vec<JournalEntry>), JournalError> {
        let path = path.as_ref().to_path_buf();
        let entries = match File::open(&path) {
            Ok(mut file) => {
                let mut text = String::new();
                file.read_to_string(&mut text)?;
                parse_entries(&text)?
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((
            Journal {
                writer: BufWriter::new(file),
                path,
                appended: 0,
            },
            entries,
        ))
    }

    /// Appends one entry and flushes it to the OS before returning, so an
    /// acknowledged entry survives a process crash.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the write or flush fails.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), JournalError> {
        let line = serde_json::to_string(entry).expect("journal entries always serialize");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.appended += 1;
        Ok(())
    }

    /// Entries appended through this handle (replayed entries not counted).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The file this journal appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses journal text, tolerating only a truncated final line.
fn parse_entries(text: &str) -> Result<Vec<JournalEntry>, JournalError> {
    let mut entries = Vec::new();
    let lines: Vec<&str> = text.split('\n').collect();
    let last = lines.len().saturating_sub(1);
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<JournalEntry>(line) {
            Ok(entry) => entries.push(entry),
            // `split('\n')` puts a complete (newline-terminated) final entry
            // at index last-1 with "" at last, so an unparseable fragment at
            // `last` is precisely a line whose newline never made it out.
            Err(_) if i == last => break,
            Err(e) => {
                return Err(JournalError::Corrupt {
                    line: i + 1,
                    reason: e.to_string(),
                })
            }
        }
    }
    Ok(entries)
}

/// A job the crash left unfinished, reconstructed from its `Accepted`
/// entry: the original id, the original correlation [`trace_id`], and the
/// request to re-run.
///
/// [`trace_id`]: RecoveredJob::trace_id
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJob {
    /// The id originally assigned at submission.
    pub id: u64,
    /// The correlation id originally assigned at submission.
    pub trace_id: u64,
    /// The original request (circuit, shots, seed, priority).
    pub request: JobRequest,
}

/// Distills replayed entries into the jobs the crash left unfinished, in
/// acceptance order, plus the largest id ever issued (0 when none).
///
/// A job is outstanding when its `Accepted` has no matching `Completed` or
/// `Failed`. Re-submitting these with their recorded ids and seeds yields
/// results bit-identical to the interrupted run, and their recorded trace
/// ids keep the replays correlatable with the original submissions.
pub fn outstanding(entries: &[JournalEntry]) -> (Vec<RecoveredJob>, u64) {
    let mut max_id = 0;
    let mut open: Vec<RecoveredJob> = Vec::new();
    for entry in entries {
        match entry {
            JournalEntry::Accepted {
                id,
                trace_id,
                circuit,
                shots,
                seed,
                priority,
            } => {
                max_id = max_id.max(*id);
                open.push(RecoveredJob {
                    id: *id,
                    trace_id: *trace_id,
                    request: JobRequest {
                        circuit: circuit.clone(),
                        shots: *shots,
                        seed: *seed,
                        priority: *priority,
                    },
                });
            }
            JournalEntry::Completed { id } | JournalEntry::Failed { id } => {
                open.retain(|job| job.id != *id);
            }
        }
    }
    (open, max_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "edm-journal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn bell() -> Circuit {
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure_all();
        c
    }

    fn accepted(id: u64) -> JournalEntry {
        JournalEntry::Accepted {
            id,
            trace_id: id * 1000 + 7,
            circuit: bell(),
            shots: 256,
            seed: id * 11,
            priority: Priority::Normal,
        }
    }

    #[test]
    fn entries_survive_a_reopen() {
        let path = dir().join("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, replayed) = Journal::open(&path).unwrap();
            assert!(replayed.is_empty());
            j.append(&accepted(1)).unwrap();
            j.append(&JournalEntry::Completed { id: 1 }).unwrap();
            j.append(&accepted(2)).unwrap();
            assert_eq!(j.appended(), 3);
        }
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 3);
        let (open, max_id) = outstanding(&replayed);
        assert_eq!(max_id, 2);
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].id, 2);
        assert_eq!(open[0].trace_id, 2007, "trace id survives the reopen");
        assert_eq!(open[0].request.seed, 22);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_final_line_is_dropped_not_fatal() {
        let path = dir().join("truncated.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(&accepted(1)).unwrap();
        }
        // Simulate dying mid-append: a half-written line, no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"Accepted\":{\"id\":2,\"circ").unwrap();
        }
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert!(matches!(replayed[0], JournalEntry::Accepted { id: 1, .. }));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_middle_line_is_a_data_error() {
        let path = dir().join("corrupt.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(&accepted(1)).unwrap();
            j.append(&accepted(2)).unwrap();
        }
        // Damage the FIRST line; the file still ends in a clean newline.
        let text = std::fs::read_to_string(&path).unwrap();
        let damaged = text.replacen("Accepted", "Axxepted", 1);
        std::fs::write(&path, damaged).unwrap();
        let err = Journal::open(&path).unwrap_err();
        match err {
            JournalError::Corrupt { line, .. } => assert_eq!(line, 1),
            other => panic!("expected Corrupt, got {other}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn outstanding_ignores_finished_jobs_and_tracks_max_id() {
        let entries = vec![
            accepted(5),
            accepted(6),
            JournalEntry::Failed { id: 5 },
            accepted(7),
            JournalEntry::Completed { id: 7 },
        ];
        let (open, max_id) = outstanding(&entries);
        assert_eq!(max_id, 7);
        assert_eq!(open.iter().map(|j| j.id).collect::<Vec<_>>(), vec![6]);
    }

    #[test]
    fn fresh_journal_replays_empty() {
        let path = dir().join("fresh.jsonl");
        let _ = std::fs::remove_file(&path);
        let (j, replayed) = Journal::open(&path).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(j.path(), path);
        let (open, max_id) = outstanding(&replayed);
        assert!(open.is_empty());
        assert_eq!(max_id, 0);
        std::fs::remove_file(&path).unwrap();
    }
}
