//! The job service: admission, cached compilation, coalesced dispatch.
//!
//! [`JobService`] owns the device description (topology + calibration), the
//! compilation cache, the admission queue, and a retry-aware dispatcher
//! around the execution backend. `submit` only validates and enqueues;
//! `process_pending` drains a priority-ordered batch, compiles each circuit
//! through the cache, and coalesces every member job of every drained
//! request into ONE `execute_batch` call — legal because batch execution is
//! bit-identical to running each job alone (see
//! [`Backend::execute_batch`]).

use crate::cache::{CacheKey, CompileCache};
use crate::clock::{Clock, SystemClock};
use crate::dispatch::{BreakerConfig, CircuitBreaker, Dispatcher, RetryPolicy};
use crate::journal::{self, Journal, JournalEntry, JournalError};
use crate::queue::{AdmissionQueue, AdmitError, JobRequest, QueuedJob};
use crate::stats::{LatencyRecorder, ServiceStats};
use crate::validate;
use edm_core::{
    assemble_result, build_ensemble, filter, plan_run, Backend, BatchJob, Controller,
    ControllerConfig, ControllerEvent, EdmResult, EnsembleConfig, EnsembleMember,
    MemberObservation, ProbDist, QualityConfig, QualityEstimator, QualitySnapshot, RunPlan,
};
use edm_telemetry::trace::TraceContext;
use qdevice::drift::{DriftPolicy, DriftWatchdog};
use qdevice::{Calibration, Topology};
use qmap::Transpiler;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// Knobs for a [`JobService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bound on waiting jobs before submissions are rejected.
    pub queue_capacity: usize,
    /// Bound on live compilation-cache entries.
    pub cache_capacity: usize,
    /// Most requests drained (and coalesced) per `process_pending` call.
    pub max_batch_jobs: usize,
    /// Execution thread cap (bit-identical for any value).
    pub threads: usize,
    /// Ensemble construction parameters, shared by every job.
    pub ensemble: EnsembleConfig,
    /// Retry behavior of the dispatcher.
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning for the backend wrapper.
    pub breaker: BreakerConfig,
    /// Calibration-drift thresholds for the quarantine watchdog.
    pub drift: DriftPolicy,
    /// Closed-loop feedback controller over ensemble composition; `None`
    /// (the default) keeps the classic static top-K behavior. When set,
    /// each circuit's pool is compiled `spares` members larger and the
    /// controller reweights/swaps/recompiles between runs (DESIGN.md §14).
    pub controller: Option<ControllerConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            cache_capacity: 64,
            max_batch_jobs: 32,
            threads: qsim::pool::default_threads(),
            ensemble: EnsembleConfig::default(),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            drift: DriftPolicy::default(),
            controller: None,
        }
    }
}

/// One controller decision with the circuit it was made for, in the order
/// decisions were made. The `edm-serve --controller-log` flag streams
/// these to disk as JSON lines; tests compare whole sequences to prove
/// replay determinism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerDecision {
    /// Fingerprint of the circuit whose ensemble the decision concerns.
    pub circuit: u64,
    /// The decision itself.
    pub event: ControllerEvent,
}

/// Per-circuit controller state: the controller plus the calibration
/// generation its pool was compiled under (a mismatch means the pool went
/// stale and the controller must rebuild onto the fresh one).
struct ControllerEntry {
    controller: Controller,
    generation: u64,
}

/// Where a submitted job currently is.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Admitted, waiting for a `process_pending` pass.
    Queued,
    /// Finished with a result.
    Done(CompletedJob),
    /// Finished with a terminal error.
    Failed(String),
}

/// A finished job's result and its accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedJob {
    /// The full EDM result — bit-identical to a direct
    /// [`EdmRunner::run`](edm_core::EdmRunner::run) with the same inputs.
    pub result: EdmResult,
    /// Submit-to-finish latency on the service clock, milliseconds.
    pub latency_ms: u64,
}

/// A long-running EDM job service over one device.
///
/// Generic over the execution [`Backend`]; the service wraps it in a
/// [`Dispatcher`] so transient failures are retried transparently.
pub struct JobService<B> {
    topology: Topology,
    topology_fp: u64,
    calibration: Calibration,
    dispatcher: CircuitBreaker<Dispatcher<B>>,
    watchdog: DriftWatchdog,
    journal: Option<Journal>,
    cache: CompileCache,
    queue: AdmissionQueue,
    jobs: BTreeMap<u64, JobState>,
    /// Correlation id per job id, live for the job's whole service life —
    /// unlike `JobState`, it never changes as the job moves through states.
    trace_ids: BTreeMap<u64, u64>,
    /// Client parent-span id per job id, for jobs whose submission carried
    /// one: server-side spans for the job parent under it, stitching the
    /// cross-process trace tree. Dropped on restart (the client span is
    /// gone), which only flattens — never breaks — the replayed trace.
    trace_parents: BTreeMap<u64, u64>,
    /// Live answer-quality estimate for this device: EWMA of observed
    /// top-outcome share vs the ESP the planner predicted, per job.
    quality: QualityEstimator,
    next_id: u64,
    clock: Arc<dyn Clock>,
    latency: LatencyRecorder,
    config: ServeConfig,
    submitted: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    batches: u64,
    compilations: u64,
    degraded: u64,
    recovered: u64,
    journal_appends: u64,
    /// Per-circuit feedback controllers (empty unless
    /// [`ServeConfig::controller`] is set), keyed by circuit fingerprint.
    controllers: BTreeMap<u64, ControllerEntry>,
    /// Decisions not yet drained by [`JobService::take_controller_events`],
    /// oldest first, bounded to avoid unbounded growth in embedded users.
    controller_events: Vec<ControllerDecision>,
    controller_swaps: u64,
    controller_reweights: u64,
    controller_recompiles: u64,
}

impl<B: Backend> JobService<B> {
    /// Creates a service over `topology` + `calibration`, executing on
    /// `backend`, with the real system clock.
    ///
    /// # Panics
    ///
    /// Panics if the calibration does not cover the topology, or if
    /// `config` has a zero queue, cache, batch, or thread bound.
    pub fn new(
        topology: Topology,
        calibration: Calibration,
        backend: B,
        config: ServeConfig,
    ) -> Self {
        JobService::with_clock(
            topology,
            calibration,
            backend,
            config,
            Arc::new(SystemClock::new()),
        )
    }

    /// Same as [`JobService::new`] with an explicit clock (tests pass
    /// [`ManualClock`](crate::clock::ManualClock)).
    ///
    /// # Panics
    ///
    /// Same conditions as [`JobService::new`].
    pub fn with_clock(
        topology: Topology,
        calibration: Calibration,
        backend: B,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        assert_eq!(
            topology.num_qubits(),
            calibration.num_qubits(),
            "calibration must cover the topology"
        );
        assert!(config.max_batch_jobs > 0, "batch bound must be positive");
        assert!(config.threads > 0, "need at least one thread");
        let topology_fp = topology.fingerprint();
        // Breaker outside dispatcher: when the backend is declared dead,
        // calls skip the whole backoff schedule instead of sleeping
        // through it.
        let dispatcher = CircuitBreaker::with_clock(
            Dispatcher::with_clock(backend, config.retry, Arc::clone(&clock)),
            config.breaker,
            Arc::clone(&clock),
        );
        // Seed the watchdog's baseline so the next update_calibration is
        // compared against what we're compiling with right now.
        let mut watchdog = DriftWatchdog::new(config.drift);
        watchdog.observe(&calibration);
        JobService {
            topology,
            topology_fp,
            calibration,
            dispatcher,
            watchdog,
            journal: None,
            cache: CompileCache::new(config.cache_capacity),
            queue: AdmissionQueue::new(config.queue_capacity),
            jobs: BTreeMap::new(),
            trace_ids: BTreeMap::new(),
            trace_parents: BTreeMap::new(),
            quality: QualityEstimator::new(QualityConfig::default()),
            next_id: 1,
            clock,
            latency: LatencyRecorder::default(),
            config,
            submitted: 0,
            completed: 0,
            failed: 0,
            rejected: 0,
            batches: 0,
            compilations: 0,
            degraded: 0,
            recovered: 0,
            journal_appends: 0,
            controllers: BTreeMap::new(),
            controller_events: Vec::new(),
            controller_swaps: 0,
            controller_reweights: 0,
            controller_recompiles: 0,
        }
    }

    /// Attaches a write-ahead journal at `path`, replaying any entries a
    /// previous process left behind. Jobs that were accepted but never
    /// finished are re-enqueued under their original ids and seeds — their
    /// recovered results are bit-identical to what the interrupted run
    /// would have produced. Returns how many jobs were recovered.
    ///
    /// # Errors
    ///
    /// [`JournalError`] when the file cannot be opened or a non-final line
    /// is corrupt (a data error — the service refuses to silently drop
    /// journaled jobs).
    pub fn attach_journal(&mut self, path: impl AsRef<Path>) -> Result<usize, JournalError> {
        let (journal, entries) = Journal::open(path)?;
        let (open, max_id) = journal::outstanding(&entries);
        let recovered = open.len();
        for recovered_job in open {
            let id = recovered_job.id;
            // The original correlation id, not a fresh one: the replayed
            // job's responses and spans stay correlatable with whatever the
            // crashed process logged about it.
            self.trace_ids.insert(id, recovered_job.trace_id);
            let job = QueuedJob {
                id,
                request: recovered_job.request,
                enqueued_at_ms: self.clock.now_ms(),
            };
            match self.queue.push(job) {
                Ok(()) => {
                    self.jobs.insert(id, JobState::Queued);
                    self.submitted += 1;
                    self.recovered += 1;
                    edm_telemetry::counter!(
                        "edm_serve_recovered_total",
                        "Jobs re-enqueued from the journal after a restart"
                    )
                    .inc();
                }
                // A recovered backlog larger than the queue: the overflow
                // fails visibly rather than vanishing.
                Err(e) => self.fail(id, format!("recovery dropped the job: {e}")),
            }
        }
        self.next_id = self.next_id.max(max_id + 1);
        self.journal = Some(journal);
        Ok(recovered)
    }

    /// Validates and enqueues a job, returning its id.
    ///
    /// Admission never runs the pipeline — a bad circuit is only discovered
    /// (and reported via [`JobState::Failed`]) when its batch runs.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Invalid`] for a zero shot budget,
    /// [`AdmitError::QueueFull`] under backpressure. Rejected jobs get no
    /// id and leave no trace beyond the `rejected` counter.
    pub fn submit(&mut self, request: JobRequest) -> Result<u64, AdmitError> {
        self.submit_with_context(request, TraceContext::default())
    }

    /// [`JobService::submit`] with an explicit trace context: when the
    /// client already opened a trace (`ctx.trace_id != 0`), the job adopts
    /// it — every server-side span, journal entry, and pool slice carries
    /// the client's id, and spans parent under `ctx.parent_span` — so one
    /// trace covers the whole cross-process request. A zero context is
    /// exactly [`JobService::submit`]: the service mints a fresh id.
    ///
    /// # Errors
    ///
    /// Same conditions as [`JobService::submit`].
    pub fn submit_with_context(
        &mut self,
        request: JobRequest,
        ctx: TraceContext,
    ) -> Result<u64, AdmitError> {
        if let Err(e) = validate::shots(request.shots) {
            self.reject();
            return Err(AdmitError::Invalid(e.to_string()));
        }
        // Backpressure is checked before journaling so a rejected job
        // never leaves an orphan `Accepted` entry behind.
        if self.queue.len() >= self.config.queue_capacity {
            self.reject();
            return Err(AdmitError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let id = self.next_id;
        let trace_id = if ctx.trace_id != 0 {
            ctx.trace_id
        } else {
            edm_telemetry::trace::next_trace_id()
        };
        let _trace = edm_telemetry::trace::with_context(TraceContext {
            trace_id,
            parent_span: ctx.parent_span,
        });
        let _span = edm_telemetry::trace::span("serve_admit");
        // Write-ahead: the journal entry lands on disk before the job is
        // acknowledged, so an accepted job survives a crash. A job we
        // cannot journal is refused — accepting it silently would break
        // the recovery contract.
        if let Some(journal) = &mut self.journal {
            let entry = JournalEntry::Accepted {
                id,
                trace_id,
                circuit: request.circuit.clone(),
                shots: request.shots,
                seed: request.seed,
                priority: request.priority,
            };
            if let Err(e) = journal.append(&entry) {
                self.reject();
                return Err(AdmitError::Journal(e.to_string()));
            }
            self.count_journal_append();
        }
        let job = QueuedJob {
            id,
            request,
            enqueued_at_ms: self.clock.now_ms(),
        };
        self.queue
            .push(job)
            .expect("capacity was checked before journaling");
        self.next_id += 1;
        self.submitted += 1;
        self.trace_ids.insert(id, trace_id);
        if ctx.parent_span != 0 {
            self.trace_parents.insert(id, ctx.parent_span);
        }
        edm_telemetry::counter!("edm_serve_submitted_total", "Jobs admitted to the queue").inc();
        edm_telemetry::gauge!("edm_serve_queue_depth", "Jobs waiting in the queue")
            .set(self.queue.len() as i64);
        self.jobs.insert(id, JobState::Queued);
        Ok(id)
    }

    /// The correlation id assigned to `id` at submission (or recovered from
    /// the journal), if the id was ever issued.
    pub fn trace_id(&self, id: u64) -> Option<u64> {
        self.trace_ids.get(&id).copied()
    }

    /// The trace context every span of job `id` links into: the job's
    /// trace id plus the client parent span (0 when the client sent none
    /// or the job was replayed from the journal).
    fn job_context(&self, id: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id(id).unwrap_or(0),
            parent_span: self.trace_parents.get(&id).copied().unwrap_or(0),
        }
    }

    fn reject(&mut self) {
        self.rejected += 1;
        edm_telemetry::counter!(
            "edm_serve_rejected_total",
            "Submissions refused at admission (validation or backpressure)"
        )
        .inc();
    }

    /// Drains up to `max_batch_jobs` queued requests, compiles each through
    /// the cache, and executes ALL their member jobs as one coalesced
    /// `execute_batch` dispatch. Returns how many requests finished (in
    /// either state).
    pub fn process_pending(&mut self) -> usize {
        let drained = self.queue.drain_batch(self.config.max_batch_jobs);
        if drained.is_empty() {
            return 0;
        }
        let processed = drained.len();
        edm_telemetry::gauge!("edm_serve_queue_depth", "Jobs waiting in the queue")
            .set(self.queue.len() as i64);

        // Phase 1: compile (through the cache) and plan each request.
        // Failures are terminal for that request only.
        let mut plans: Vec<(u64, u64, RunPlan, Option<u64>)> = Vec::new();
        for job in drained {
            // Compile under the job's full trace context so transpile/VF2
            // spans of a cache miss carry the trace id AND parent under
            // the client's span when the submission named one.
            let ctx = self.job_context(job.id);
            let _trace = edm_telemetry::trace::with_context(ctx);
            let _span = edm_telemetry::trace::span("serve_plan");
            let pool = match self.compile_cached(&job.request.circuit) {
                Ok(members) => members,
                Err(reason) => {
                    self.fail(job.id, reason);
                    continue;
                }
            };
            // With the controller on, the pool is larger than the active
            // ensemble: plan over whatever the circuit's controller holds
            // active right now (rebuilding first if the pool went stale,
            // and evicting quarantined footprints).
            let (members, context): (Vec<EnsembleMember>, Option<u64>) =
                if self.config.controller.is_some() {
                    let fp = job.request.circuit.fingerprint();
                    (self.controller_members(fp, &pool), Some(fp))
                } else {
                    (pool.as_ref().clone(), None)
                };
            match plan_run(
                members,
                job.request.shots,
                job.request.seed,
                self.config.ensemble.shot_allocation,
            ) {
                Ok(mut plan) => {
                    // Pool slices of this plan run inside the coalesced
                    // phase-2 dispatch, long after the planning span above
                    // has closed — parent them under the client's span
                    // (or the trace root) rather than a dead sibling.
                    plan.set_trace(ctx);
                    plans.push((job.id, job.enqueued_at_ms, plan, context));
                }
                Err(e) => self.fail(job.id, e.to_string()),
            }
        }

        // Phase 2: one coalesced dispatch for every member job of every
        // planned request. Seeds were forked per-request inside plan_run,
        // so concatenation changes nothing about any job's RNG stream.
        if !plans.is_empty() {
            let all_jobs: Vec<BatchJob<'_>> =
                plans.iter().flat_map(|(_, _, p, _)| p.jobs()).collect();
            let results = {
                let _span = edm_telemetry::trace::span("dispatch");
                edm_telemetry::histogram!(
                    "edm_serve_dispatch_us",
                    "Wall time of one coalesced execute_batch dispatch"
                )
                .time(|| {
                    self.dispatcher
                        .execute_batch(&all_jobs, self.config.threads)
                })
            };
            drop(all_jobs);
            self.batches += 1;
            edm_telemetry::counter!(
                "edm_serve_batches_total",
                "Coalesced execute_batch dispatches issued"
            )
            .inc();

            // Phase 3: split the flat result vector back per request and
            // merge each into its EdmResult.
            let mut results = results.into_iter();
            for (id, enqueued_at_ms, plan, context) in plans {
                let _trace = edm_telemetry::trace::with_context(self.job_context(id));
                let _span = edm_telemetry::trace::span("serve_assemble");
                let k = plan.members.len();
                // The best planned ESP is the promise the quality plane
                // scores the merged outcome against.
                let predicted_esp = plan
                    .members
                    .iter()
                    .map(|m| m.esp)
                    .fold(f64::NEG_INFINITY, f64::max);
                let raw: Vec<_> = results.by_ref().take(k).collect();
                match assemble_result(plan.members, raw, &self.config.ensemble) {
                    Ok(mut result) => {
                        if let Some(fp) = context {
                            self.controller_observe(fp, k, &mut result);
                        }
                        self.observe_quality(&result, predicted_esp);
                        let latency_ms = self.clock.now_ms().saturating_sub(enqueued_at_ms);
                        self.latency.record(latency_ms);
                        self.completed += 1;
                        edm_telemetry::counter!(
                            "edm_serve_jobs_completed_total",
                            "Jobs finished with a result"
                        )
                        .inc();
                        edm_telemetry::histogram!(
                            "edm_serve_job_latency_ms",
                            "Submit-to-finish job latency in milliseconds"
                        )
                        .observe(latency_ms);
                        if result.is_degraded() {
                            self.degraded += 1;
                            edm_telemetry::counter!(
                                "edm_serve_degraded_jobs_total",
                                "Jobs whose ensemble lost members and ran degraded"
                            )
                            .inc();
                        }
                        self.journal_finished(JournalEntry::Completed { id });
                        self.jobs
                            .insert(id, JobState::Done(CompletedJob { result, latency_ms }));
                    }
                    Err(e) => self.fail(id, e.to_string()),
                }
            }
        }
        processed
    }

    /// Drains the queue completely, batch by batch. Returns how many
    /// requests finished.
    pub fn process_all(&mut self) -> usize {
        let mut total = 0;
        loop {
            let n = self.process_pending();
            if n == 0 {
                return total;
            }
            total += n;
        }
    }

    /// A submitted job's current state, or `None` for an unknown id.
    pub fn poll(&self, id: u64) -> Option<&JobState> {
        self.jobs.get(&id)
    }

    /// Simulates a recalibration: bumps the calibration generation and
    /// purges every now-stale cache entry. Returns the new generation.
    pub fn bump_calibration_generation(&mut self) -> u64 {
        let generation = self.calibration.bump_generation();
        self.cache.retain_generation(generation);
        // Same error rates, new generation: the watchdog sees zero drift
        // but its baseline tracks the generation we now compile against.
        self.watchdog.observe(&self.calibration);
        generation
    }

    /// Installs a fresh calibration (same device, new measured error
    /// rates). The service restamps it with the next generation so cached
    /// compilations from the old calibration can never be served.
    ///
    /// # Panics
    ///
    /// Panics if the new calibration does not cover the topology.
    pub fn update_calibration(&mut self, calibration: Calibration) {
        assert_eq!(
            self.topology.num_qubits(),
            calibration.num_qubits(),
            "calibration must cover the topology"
        );
        let generation = self.calibration.generation() + 1;
        self.calibration = calibration.with_generation(generation);
        self.cache.retain_generation(generation);
        // Score the new calibration against the previous one; qubits and
        // links whose error rates worsened past the drift thresholds are
        // quarantined and avoided by every compilation until rates
        // stabilize.
        self.watchdog.observe(&self.calibration);
        edm_telemetry::gauge!(
            "edm_serve_quarantined_qubits",
            "Qubits currently quarantined by the drift watchdog"
        )
        .set(self.watchdog.quarantine().num_qubits() as i64);
        edm_telemetry::gauge!(
            "edm_serve_quarantined_links",
            "Links currently quarantined by the drift watchdog"
        )
        .set(self.watchdog.quarantine().num_links() as i64);
    }

    /// The drift watchdog (thresholds, current quarantine, event count).
    pub fn watchdog(&self) -> &DriftWatchdog {
        &self.watchdog
    }

    /// The calibration currently compiled against.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The device topology served.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Jobs waiting in the queue right now.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Counter snapshot across queue, cache, dispatcher, breaker,
    /// watchdog, journal, and latencies.
    pub fn stats(&self) -> ServiceStats {
        // One sorted copy serves both percentiles (the old code re-sorted
        // the reservoir per percentile).
        let ps = self.latency.percentiles_ms(&[50, 99]);
        let (latency_p50_ms, latency_p99_ms) = (ps[0], ps[1]);
        ServiceStats {
            submitted: self.submitted,
            completed: self.completed,
            failed: self.failed,
            rejected: self.rejected,
            batches: self.batches,
            compilations: self.compilations,
            queue_depth: self.queue.len() as u64,
            cache: self.cache.stats(),
            retries: self.dispatcher.inner().retries(),
            retry_exhausted: self.dispatcher.inner().exhausted(),
            timeouts: self.dispatcher.inner().timeouts(),
            breaker: self.dispatcher.stats(),
            drift_events: self.watchdog.drift_events(),
            quarantined_qubits: self.watchdog.quarantine().num_qubits() as u64,
            quarantined_links: self.watchdog.quarantine().num_links() as u64,
            degraded: self.degraded,
            recovered: self.recovered,
            journal_appends: self.journal_appends,
            controller_swaps: self.controller_swaps,
            controller_reweights: self.controller_reweights,
            controller_recompiles: self.controller_recompiles,
            quality: self.quality.snapshot(),
            latency_p50_ms,
            latency_p99_ms,
        }
    }

    /// The live answer-quality estimate for this device: EWMA of observed
    /// merged top-outcome share against the planner's predicted ESP, one
    /// observation per completed job. Deterministic and clock-free — a
    /// replica that processed the same jobs reports the identical
    /// snapshot.
    pub fn quality(&self) -> QualitySnapshot {
        self.quality.snapshot()
    }

    /// Feeds one completed job into the quality estimator and refreshes
    /// the quality gauges.
    fn observe_quality(&mut self, result: &EdmResult, predicted_esp: f64) {
        let Some(top) = result.edm.most_probable() else {
            return;
        };
        if !predicted_esp.is_finite() {
            return;
        }
        self.quality
            .observe(predicted_esp, result.edm.probability(top));
    }

    /// Test hook: injects a raw (predicted ESP, observed top share)
    /// observation, exactly as a completed job would.
    #[doc(hidden)]
    pub fn inject_quality_observation(&mut self, predicted_esp: f64, observed_top_share: f64) {
        self.quality.observe(predicted_esp, observed_top_share);
    }

    /// The predicted success probability of running `circuit` on this
    /// device right now: the ESP of the best ensemble member under the
    /// current calibration and quarantine. Compiles through the cache, so
    /// scoring a circuit warms the same entry its subsequent submission
    /// hits — a fleet scheduler can score every device without paying for
    /// compilation twice.
    ///
    /// # Errors
    ///
    /// The compilation error as text when the circuit cannot be mapped to
    /// this device (too many qubits, no embedding) — a scheduler treats
    /// that as "this device is not a candidate".
    pub fn predicted_esp(&mut self, circuit: &qcir::Circuit) -> Result<f64, String> {
        let members = self.compile_cached(circuit)?;
        // build_ensemble returns members best-ESP-first.
        members
            .first()
            .map(|m| m.esp)
            .ok_or_else(|| "empty ensemble".to_string())
    }

    /// The backend breaker's admission state right now.
    pub fn breaker_state(&self) -> crate::dispatch::BreakerState {
        self.dispatcher.state()
    }

    /// True when the drift watchdog currently quarantines any qubit or
    /// link of this device.
    pub fn is_quarantined(&self) -> bool {
        let q = self.watchdog.quarantine();
        q.num_qubits() > 0 || q.num_links() > 0
    }

    /// Looks a circuit's ensemble up in the cache, compiling (and caching)
    /// on a miss.
    fn compile_cached(
        &mut self,
        circuit: &qcir::Circuit,
    ) -> Result<Arc<Vec<edm_core::EnsembleMember>>, String> {
        let key = CacheKey {
            circuit: circuit.fingerprint(),
            topology: self.topology_fp,
            generation: self.calibration.generation(),
        };
        if let Some(members) = self.cache.get(&key) {
            edm_telemetry::counter!(
                "edm_serve_cache_hits_total",
                "Compilations served from the ensemble cache"
            )
            .inc();
            return Ok(members);
        }
        edm_telemetry::counter!(
            "edm_serve_cache_misses_total",
            "Compilations that missed the ensemble cache"
        )
        .inc();
        // Quarantine only changes when the calibration does, and every
        // calibration change bumps the generation in the cache key — so
        // cached ensembles never reflect a stale quarantine.
        let transpiler = Transpiler::new(&self.topology, &self.calibration)
            .with_quarantine(self.watchdog.quarantine());
        // With the controller on, compile `spares` extra ranked layouts:
        // the active ensemble stays `size` wide, the surplus is the swap
        // pool the controller promotes from.
        let mut ensemble_config = self.config.ensemble;
        if let Some(controller) = &self.config.controller {
            ensemble_config.size += controller.spares;
        }
        let members =
            build_ensemble(&transpiler, circuit, &ensemble_config).map_err(|e| e.to_string())?;
        self.compilations += 1;
        Ok(self.cache.insert(key, members))
    }

    /// The members to plan this run over, per the circuit's feedback
    /// controller: creates the controller on first sight, rebuilds it when
    /// the pool was recompiled under a new calibration generation, and
    /// applies the swap policy (quarantined footprints, struck-out slots)
    /// before planning. Only called when [`ServeConfig::controller`] is set.
    fn controller_members(
        &mut self,
        fp: u64,
        pool: &Arc<Vec<EnsembleMember>>,
    ) -> Vec<EnsembleMember> {
        let config = self
            .config
            .controller
            .expect("controller_members requires a controller config");
        let target = self.config.ensemble.size;
        let generation = self.calibration.generation();
        let mut events = Vec::new();
        let members: Vec<EnsembleMember> = {
            let entry = self
                .controllers
                .entry(fp)
                .or_insert_with(|| ControllerEntry {
                    controller: Controller::new(config, pool.len(), target),
                    generation,
                });
            let stale = entry.generation != generation
                || entry.controller.active().iter().any(|&i| i >= pool.len());
            if stale {
                events.push(entry.controller.rebuild(pool.len(), generation));
                entry.generation = generation;
            }
            let footprints: Vec<Vec<u32>> = pool.iter().map(|m| m.qubits.clone()).collect();
            events.extend(
                entry
                    .controller
                    .maintain(&footprints, Some(self.watchdog.quarantine())),
            );
            entry
                .controller
                .active()
                .iter()
                .map(|&i| pool[i].clone())
                .collect()
        };
        self.record_controller_events(fp, events);
        // Bound the controller map like the cache it shadows; evict the
        // smallest other fingerprint (deterministic, and never the entry
        // serving the current job).
        let bound = self.config.cache_capacity.max(1) * 2;
        while self.controllers.len() > bound {
            let victim = self
                .controllers
                .keys()
                .find(|k| **k != fp)
                .copied()
                .expect("bound > 1, so another entry exists");
            self.controllers.remove(&victim);
        }
        members
    }

    /// Feeds one finished run back into the circuit's controller: builds
    /// per-slot observations (plan order, failures included), updates the
    /// health EWMA, and — when the controller decides the realized WEDM
    /// weights disagree with member health — re-merges the result under
    /// the health-adjusted weights. `planned` is the planned member count
    /// (survivors plus failures).
    fn controller_observe(&mut self, fp: u64, planned: usize, result: &mut EdmResult) {
        let threshold = self
            .config
            .ensemble
            .uniformity_filter
            .unwrap_or(filter::DEFAULT_RSD_THRESHOLD);
        // Failed slots by plan index; survivors fill the remaining slots
        // in order (assemble_result preserves plan order among survivors).
        let failed: BTreeMap<usize, f64> = match &result.health {
            edm_core::RunHealth::Degraded { failed_members, .. } => failed_members
                .iter()
                .map(|f| (f.index, f.member.esp))
                .collect(),
            edm_core::RunHealth::Full => BTreeMap::new(),
        };
        let mut observations = Vec::with_capacity(planned);
        let mut survivor = 0usize;
        for slot in 0..planned {
            if let Some(&esp) = failed.get(&slot) {
                observations.push(MemberObservation {
                    esp,
                    informative: false,
                    realized_weight: 0.0,
                    failed: true,
                });
            } else if survivor < result.members.len() {
                let run = &result.members[survivor];
                observations.push(MemberObservation {
                    esp: run.member.esp,
                    informative: filter::is_informative(&run.dist, threshold),
                    realized_weight: result.weights.get(survivor).copied().unwrap_or(0.0),
                    failed: false,
                });
                survivor += 1;
            }
        }
        let Some(entry) = self.controllers.get_mut(&fp) else {
            return;
        };
        if observations.len() != entry.controller.active().len() {
            // The controller changed shape between planning and assembly
            // (can only happen through external mutation); skip feedback
            // rather than misattribute observations to the wrong slots.
            return;
        }
        let assessment = entry.controller.observe(&observations);
        if assessment.reweighted {
            // Map per-slot adjusted weights back onto the survivors and
            // re-merge WEDM under them. Failed slots carry no
            // distribution, so their (zero) weight is simply dropped.
            let mut adjusted = Vec::with_capacity(result.members.len());
            for (slot, weight) in assessment.weights.iter().enumerate() {
                if !failed.contains_key(&slot) {
                    adjusted.push(*weight);
                }
            }
            let total: f64 = adjusted.iter().sum();
            if adjusted.len() == result.members.len() && total.is_finite() && total > 0.0 {
                for w in &mut adjusted {
                    *w /= total;
                }
                let dists: Vec<ProbDist> = result.members.iter().map(|r| r.dist.clone()).collect();
                result.wedm = ProbDist::merge_weighted(&dists, &adjusted);
                result.weights = adjusted;
            }
        }
        let events = assessment.events;
        self.record_controller_events(fp, events);
    }

    /// Mirrors controller decisions into the service-level counters and
    /// the bounded drainable decision log.
    fn record_controller_events(&mut self, fp: u64, events: Vec<ControllerEvent>) {
        for event in events {
            match &event {
                ControllerEvent::Swap { .. } => self.controller_swaps += 1,
                ControllerEvent::Reweight { .. } => self.controller_reweights += 1,
                ControllerEvent::Recompile { .. } => self.controller_recompiles += 1,
            }
            self.controller_events
                .push(ControllerDecision { circuit: fp, event });
        }
        const EVENT_BOUND: usize = 4096;
        if self.controller_events.len() > EVENT_BOUND {
            let excess = self.controller_events.len() - EVENT_BOUND;
            self.controller_events.drain(..excess);
        }
    }

    /// Drains the controller decisions made since the last call, oldest
    /// first (the `--controller-log` flag streams these to disk).
    pub fn take_controller_events(&mut self) -> Vec<ControllerDecision> {
        std::mem::take(&mut self.controller_events)
    }

    fn fail(&mut self, id: u64, reason: String) {
        self.failed += 1;
        edm_telemetry::counter!(
            "edm_serve_jobs_failed_total",
            "Jobs finished with a terminal error"
        )
        .inc();
        self.journal_finished(JournalEntry::Failed { id });
        self.jobs.insert(id, JobState::Failed(reason));
    }

    /// Journals a terminal transition. Unlike admission, a failed append
    /// here is tolerated: the work is already done, and re-running a
    /// finished job after a crash is safe because execution is
    /// deterministic — the replay reproduces the identical result.
    fn journal_finished(&mut self, entry: JournalEntry) {
        if let Some(journal) = &mut self.journal {
            if journal.append(&entry).is_ok() {
                self.count_journal_append();
            }
        }
    }

    fn count_journal_append(&mut self) {
        self.journal_appends += 1;
        edm_telemetry::counter!(
            "edm_serve_journal_appends_total",
            "Write-ahead journal entries appended"
        )
        .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::queue::Priority;
    use qcir::Circuit;
    use qdevice::{presets, DeviceModel};
    use qsim::NoisySimulator;

    fn ghz(n: u32) -> Circuit {
        let mut c = Circuit::new(n, n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c.measure_all();
        c
    }

    fn request(circuit: Circuit, shots: u64, seed: u64) -> JobRequest {
        JobRequest {
            circuit,
            shots,
            seed,
            priority: Priority::Normal,
        }
    }

    fn small_config() -> ServeConfig {
        ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn submit_process_poll_lifecycle() {
        let device = DeviceModel::synthesize(presets::melbourne14(), 11);
        let backend = NoisySimulator::from_device(&device);
        let mut svc = JobService::with_clock(
            device.topology().clone(),
            device.calibration(),
            backend,
            small_config(),
            Arc::new(ManualClock::new()),
        );
        let id = svc.submit(request(ghz(3), 1024, 5)).unwrap();
        assert_eq!(svc.poll(id), Some(&JobState::Queued));
        assert_eq!(svc.queue_depth(), 1);
        assert_eq!(svc.process_pending(), 1);
        match svc.poll(id) {
            Some(JobState::Done(done)) => {
                let total: u64 = done.result.members.iter().map(|m| m.counts.shots()).sum();
                assert_eq!(total, 1024);
            }
            other => panic!("expected Done, got {other:?}"),
        }
        assert!(svc.poll(999).is_none());
        let stats = svc.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.compilations, 1);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn zero_shots_rejected_at_admission() {
        let device = DeviceModel::synthesize(presets::melbourne14(), 11);
        let backend = NoisySimulator::from_device(&device);
        let mut svc = JobService::new(
            device.topology().clone(),
            device.calibration(),
            backend,
            small_config(),
        );
        let err = svc.submit(request(ghz(3), 0, 5)).unwrap_err();
        assert!(matches!(err, AdmitError::Invalid(_)));
        assert!(err.to_string().contains("shots must be at least 1"));
        assert_eq!(svc.stats().rejected, 1);
        assert_eq!(svc.stats().submitted, 0);
    }

    #[test]
    fn queue_backpressure_rejects_without_losing_admitted_jobs() {
        let device = DeviceModel::synthesize(presets::melbourne14(), 11);
        let backend = NoisySimulator::from_device(&device);
        let mut svc = JobService::new(
            device.topology().clone(),
            device.calibration(),
            backend,
            ServeConfig {
                queue_capacity: 2,
                ..small_config()
            },
        );
        let a = svc.submit(request(ghz(2), 64, 1)).unwrap();
        let b = svc.submit(request(ghz(2), 64, 2)).unwrap();
        let err = svc.submit(request(ghz(2), 64, 3)).unwrap_err();
        assert_eq!(err, AdmitError::QueueFull { capacity: 2 });
        assert_eq!(svc.stats().rejected, 1);
        // The earlier admissions still run to completion.
        assert_eq!(svc.process_all(), 2);
        assert!(matches!(svc.poll(a), Some(JobState::Done(_))));
        assert!(matches!(svc.poll(b), Some(JobState::Done(_))));
    }

    #[test]
    fn resubmission_hits_cache_and_generation_bump_invalidates() {
        let device = DeviceModel::synthesize(presets::melbourne14(), 11);
        let backend = NoisySimulator::from_device(&device);
        let mut svc = JobService::new(
            device.topology().clone(),
            device.calibration(),
            backend,
            small_config(),
        );
        let a = svc.submit(request(ghz(3), 512, 1)).unwrap();
        svc.process_pending();
        assert_eq!(svc.stats().compilations, 1);
        assert_eq!(svc.stats().cache.misses, 1);

        // Same circuit, different shots/seed: compilation reused.
        let b = svc.submit(request(ghz(3), 1024, 2)).unwrap();
        svc.process_pending();
        assert_eq!(svc.stats().compilations, 1, "second run must hit cache");
        assert_eq!(svc.stats().cache.hits, 1);
        assert!(matches!(svc.poll(a), Some(JobState::Done(_))));
        assert!(matches!(svc.poll(b), Some(JobState::Done(_))));

        // Recalibration: cached ensembles go stale and recompile.
        let generation = svc.bump_calibration_generation();
        assert_eq!(generation, 1);
        assert_eq!(svc.stats().cache.invalidated, 1);
        svc.submit(request(ghz(3), 512, 3)).unwrap();
        svc.process_pending();
        assert_eq!(svc.stats().compilations, 2, "bump must force a recompile");
    }

    #[test]
    fn predicted_esp_warms_the_cache_for_submission() {
        let device = DeviceModel::synthesize(presets::melbourne14(), 11);
        let backend = NoisySimulator::from_device(&device);
        let mut svc = JobService::new(
            device.topology().clone(),
            device.calibration(),
            backend,
            small_config(),
        );
        let esp = svc.predicted_esp(&ghz(3)).unwrap();
        assert!(esp > 0.0 && esp <= 1.0, "ESP must be a probability: {esp}");
        assert_eq!(svc.stats().compilations, 1);

        // Scoring is idempotent and the submission reuses the entry.
        assert_eq!(svc.predicted_esp(&ghz(3)).unwrap(), esp);
        let id = svc.submit(request(ghz(3), 256, 4)).unwrap();
        svc.process_pending();
        assert!(matches!(svc.poll(id), Some(JobState::Done(_))));
        assert_eq!(svc.stats().compilations, 1, "submission must hit cache");
        assert_eq!(svc.stats().cache.hits, 2);

        // A circuit the device cannot host is an error, not a panic.
        assert!(svc.predicted_esp(&ghz(20)).is_err());
        assert_eq!(svc.breaker_state(), crate::dispatch::BreakerState::Closed);
        assert!(!svc.is_quarantined());
    }

    #[test]
    fn oversized_circuit_fails_terminally_not_fatally() {
        let device = DeviceModel::synthesize(presets::melbourne14(), 11);
        let backend = NoisySimulator::from_device(&device);
        let mut svc = JobService::new(
            device.topology().clone(),
            device.calibration(),
            backend,
            small_config(),
        );
        // 20 qubits on a 14-qubit device: compiles cannot succeed.
        let id = svc.submit(request(ghz(20), 256, 1)).unwrap();
        let ok = svc.submit(request(ghz(2), 256, 2)).unwrap();
        assert_eq!(svc.process_pending(), 2);
        assert!(matches!(svc.poll(id), Some(JobState::Failed(_))));
        assert!(matches!(svc.poll(ok), Some(JobState::Done(_))));
        assert_eq!(svc.stats().failed, 1);
        assert_eq!(svc.stats().completed, 1);
    }

    #[test]
    fn replayed_jobs_keep_their_original_trace_id() {
        let dir = std::env::temp_dir().join(format!(
            "edm-serve-trace-replay-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);

        let device = DeviceModel::synthesize(presets::melbourne14(), 11);

        // First process: accept a job, crash before processing it.
        let original_trace = {
            let backend = NoisySimulator::from_device(&device);
            let mut svc = JobService::new(
                device.topology().clone(),
                device.calibration(),
                backend,
                small_config(),
            );
            svc.attach_journal(&path).unwrap();
            let id = svc.submit(request(ghz(3), 512, 7)).unwrap();
            let trace = svc.trace_id(id).expect("submitted jobs have a trace id");
            assert_ne!(trace, 0);
            trace
            // svc dropped here without processing = the "crash".
        };

        // Second process: replay must resurrect the job under the SAME
        // trace id, not mint a fresh one.
        let backend = NoisySimulator::from_device(&device);
        let mut svc = JobService::new(
            device.topology().clone(),
            device.calibration(),
            backend,
            small_config(),
        );
        assert_eq!(svc.attach_journal(&path).unwrap(), 1);
        assert_eq!(svc.trace_id(1), Some(original_trace));
        svc.process_all();
        assert!(matches!(svc.poll(1), Some(JobState::Done(_))));
        assert_eq!(
            svc.trace_id(1),
            Some(original_trace),
            "trace id survives processing"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn client_supplied_trace_context_is_adopted() {
        edm_telemetry::set_enabled(true);
        let device = DeviceModel::synthesize(presets::melbourne14(), 11);
        let backend = NoisySimulator::from_device(&device);
        let mut svc = JobService::new(
            device.topology().clone(),
            device.calibration(),
            backend,
            small_config(),
        );
        // A trace id no other (parallel) test mints: next_trace_id() is
        // salted and sequential, so a fixed literal cannot collide.
        let client_trace = 0x7e57_0000_c0ff_ee01_u64;
        let client_span = 77u64;
        let id = svc
            .submit_with_context(
                request(ghz(3), 512, 5),
                TraceContext {
                    trace_id: client_trace,
                    parent_span: client_span,
                },
            )
            .unwrap();
        assert_eq!(svc.trace_id(id), Some(client_trace));
        assert_eq!(svc.process_pending(), 1);
        assert!(matches!(svc.poll(id), Some(JobState::Done(_))));

        let spans = edm_telemetry::trace::recorder().trace(client_trace);
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        for stage in ["serve_admit", "serve_plan", "serve_assemble", "pool_slice"] {
            assert!(names.contains(&stage), "missing {stage} in {names:?}");
        }
        // Every server-side stage parents under the client's span: one
        // trace tree across the (simulated) process boundary.
        for span in &spans {
            assert_eq!(span.trace_id, client_trace);
            if matches!(
                span.name,
                "serve_admit" | "serve_plan" | "serve_assemble" | "pool_slice"
            ) {
                assert_eq!(span.parent_id, client_span, "span {}", span.name);
            }
        }
    }

    #[test]
    fn zero_context_submission_still_mints_a_trace() {
        let device = DeviceModel::synthesize(presets::melbourne14(), 11);
        let backend = NoisySimulator::from_device(&device);
        let mut svc = JobService::new(
            device.topology().clone(),
            device.calibration(),
            backend,
            small_config(),
        );
        let id = svc
            .submit_with_context(request(ghz(2), 128, 1), TraceContext::default())
            .unwrap();
        let minted = svc.trace_id(id).unwrap();
        assert_ne!(minted, 0, "a zero client context must mint a trace id");
    }

    #[test]
    fn replay_preserves_client_supplied_trace_id_byte_identically() {
        let dir = std::env::temp_dir().join(format!(
            "edm-serve-client-trace-replay-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);

        let device = DeviceModel::synthesize(presets::melbourne14(), 11);
        let client_trace = u64::MAX - 3; // exercises full-width round-trip
        {
            let backend = NoisySimulator::from_device(&device);
            let mut svc = JobService::new(
                device.topology().clone(),
                device.calibration(),
                backend,
                small_config(),
            );
            svc.attach_journal(&path).unwrap();
            let id = svc
                .submit_with_context(
                    request(ghz(3), 512, 7),
                    TraceContext {
                        trace_id: client_trace,
                        parent_span: 9,
                    },
                )
                .unwrap();
            assert_eq!(svc.trace_id(id), Some(client_trace));
            // Crash before processing.
        }
        let backend = NoisySimulator::from_device(&device);
        let mut svc = JobService::new(
            device.topology().clone(),
            device.calibration(),
            backend,
            small_config(),
        );
        assert_eq!(svc.attach_journal(&path).unwrap(), 1);
        assert_eq!(
            svc.trace_id(1),
            Some(client_trace),
            "the CLIENT's trace id must survive the crash byte-identically"
        );
        svc.process_all();
        assert!(matches!(svc.poll(1), Some(JobState::Done(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn quality_estimator_tracks_completed_jobs() {
        let device = DeviceModel::synthesize(presets::melbourne14(), 11);
        let backend = NoisySimulator::from_device(&device);
        let mut svc = JobService::new(
            device.topology().clone(),
            device.calibration(),
            backend,
            small_config(),
        );
        assert_eq!(svc.quality().observations, 0);
        assert_eq!(svc.quality().quality_factor, 1.0);
        let id = svc.submit(request(ghz(3), 1024, 5)).unwrap();
        svc.process_pending();
        assert!(matches!(svc.poll(id), Some(JobState::Done(_))));
        let q = svc.quality();
        assert_eq!(q.observations, 1);
        let ist = q.live_ist.expect("one observation recorded");
        assert!((0.0..=1.0).contains(&ist), "IST is a probability: {ist}");
        assert_eq!(svc.stats().quality, q, "stats carries the same snapshot");
    }

    #[test]
    fn fewer_shots_than_members_fails_that_job_only() {
        let device = DeviceModel::synthesize(presets::melbourne14(), 11);
        let backend = NoisySimulator::from_device(&device);
        let mut svc = JobService::new(
            device.topology().clone(),
            device.calibration(),
            backend,
            small_config(),
        );
        // 1 shot across a (usually) multi-member ensemble.
        let id = svc.submit(request(ghz(3), 1, 9)).unwrap();
        svc.process_pending();
        match svc.poll(id) {
            Some(JobState::Failed(reason)) => {
                assert!(reason.contains("fewer shots"), "got: {reason}")
            }
            Some(JobState::Done(done)) => {
                // Degenerate but legal: a single-member ensemble can absorb
                // one shot.
                assert_eq!(done.result.members.len(), 1);
            }
            other => panic!("unexpected state {other:?}"),
        }
    }
}
