//! # edm-serve — a job service in front of the EDM pipeline
//!
//! Real deployments (IBMQ-style queues, daily calibration cycles) submit
//! many programs against the same device between calibration updates, so
//! recompiling the full VF2 + ESP ranking per job is massively redundant.
//! This crate puts a long-running service in front of the pipeline:
//!
//! - [`cache`] — memoized compiled ensembles keyed by
//!   `(circuit fingerprint, topology fingerprint, calibration generation)`,
//!   LRU-bounded, with hit/miss/eviction counters,
//! - [`queue`] — a bounded admission queue with priority classes and
//!   reject-with-reason backpressure,
//! - [`dispatch`] — a retry-aware [`Backend`](edm_core::Backend) wrapper
//!   with per-job timeout and bounded exponential backoff on transient
//!   errors, a [`CircuitBreaker`](dispatch::CircuitBreaker) that fails fast
//!   while a backend is down, and the fault-injecting
//!   [`FlakyBackend`](dispatch::FlakyBackend) /
//!   [`ChaosBackend`](dispatch::ChaosBackend) test doubles,
//! - [`journal`] — a JSON-lines write-ahead journal so accepted jobs
//!   survive a service crash and replay bit-identically,
//! - [`framing`] — the incremental line decoder both front ends use, so a
//!   request split across reads reassembles and a malformed frame gets a
//!   reject-with-reason instead of a dropped connection,
//! - [`service`] — the [`JobService`](service::JobService) orchestrator that
//!   coalesces queued jobs into one `execute_batch` dispatch,
//! - [`protocol`] — the JSON-lines request/response types the `edm-serve`
//!   binary speaks,
//! - [`exitcode`] — the sysexits-style process exit codes both binaries
//!   map error classes onto.
//!
//! ## Determinism contract
//!
//! Seeds are derived with `qsim::rngstream` exactly as
//! [`EdmRunner`](edm_core::EdmRunner) derives them, so a served job's result
//! is bit-identical to a direct `EdmRunner` run for the same
//! `(circuit, shots, seed)` — batching, caching, and retries included.
//!
//! # Examples
//!
//! ```
//! use edm_serve::queue::{JobRequest, Priority};
//! use edm_serve::service::{JobService, JobState, ServeConfig};
//! use qdevice::{presets, DeviceModel};
//! use qsim::NoisySimulator;
//!
//! let device = DeviceModel::synthesize(presets::melbourne14(), 7);
//! let backend = NoisySimulator::from_device(&device);
//! let mut service = JobService::new(
//!     device.topology().clone(),
//!     device.calibration(),
//!     backend,
//!     ServeConfig::default(),
//! );
//!
//! let mut ghz = qcir::Circuit::new(3, 3);
//! ghz.h(0).cx(0, 1).cx(1, 2).measure_all();
//! let id = service.submit(JobRequest {
//!     circuit: ghz,
//!     shots: 2048,
//!     seed: 7,
//!     priority: Priority::Normal,
//! })?;
//! service.process_pending();
//! assert!(matches!(service.poll(id), Some(JobState::Done(_))));
//! # Ok::<(), edm_serve::queue::AdmitError>(())
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod clock;
pub mod dispatch;
pub mod exitcode;
pub mod framing;
pub mod journal;
pub mod protocol;
pub mod queue;
pub mod service;
pub mod stats;
pub mod validate;
