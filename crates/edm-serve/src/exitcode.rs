//! Process exit codes shared by the `edm-cli` and `edm-serve` binaries.
//!
//! The codes follow BSD `sysexits.h` so shell callers and CI wrappers can
//! branch on *why* a run failed without parsing stderr:
//!
//! | code | meaning | retry? |
//! |------|---------|--------|
//! | 0    | success | — |
//! | 1    | unclassified failure | no |
//! | 2    | usage error (bad flags / arguments) | no |
//! | 65   | data error (corrupt journal, bad input file) | no |
//! | 75   | transient backend failure — the retry budget ran out | yes |

use qsim::SimError;

/// Generic failure not covered by a more specific code.
pub const FAILURE: u8 = 1;

/// The command line could not be understood.
pub const USAGE: u8 = 2;

/// Input data exists but is unusable (`EX_DATAERR`): a corrupt journal,
/// an unparseable circuit file.
pub const DATA: u8 = 65;

/// A transient backend condition outlasted the retry budget
/// (`EX_TEMPFAIL`): rerunning the identical command may succeed.
pub const TRANSIENT: u8 = 75;

/// Classifies a simulator error: [`TRANSIENT`] when retrying the same
/// command could succeed, [`FAILURE`] otherwise.
///
/// # Examples
///
/// ```
/// use edm_serve::exitcode;
/// use qsim::SimError;
///
/// let down = SimError::BackendUnavailable { reason: "queue contention" };
/// assert_eq!(exitcode::for_sim_error(&down), exitcode::TRANSIENT);
/// let bad = SimError::UnsupportedGate { name: "ccx" };
/// assert_eq!(exitcode::for_sim_error(&bad), exitcode::FAILURE);
/// ```
pub fn for_sim_error(e: &SimError) -> u8 {
    if e.is_transient() {
        TRANSIENT
    } else {
        FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_sysexits() {
        assert_eq!(USAGE, 2);
        assert_eq!(DATA, 65);
        assert_eq!(TRANSIENT, 75);
        assert_eq!(FAILURE, 1);
    }

    #[test]
    fn transient_classification_tracks_is_transient() {
        let transient = SimError::BackendUnavailable { reason: "down" };
        assert_eq!(for_sim_error(&transient), TRANSIENT);
        let panic = SimError::ExecutionPanicked {
            detail: "boom".into(),
        };
        assert_eq!(for_sim_error(&panic), FAILURE);
    }
}
