//! The retry-aware dispatcher: a [`Backend`] wrapper that survives
//! transient failures.
//!
//! Real backends drop jobs for reasons that have nothing to do with the
//! circuit — queue contention, lost links, worker restarts. The
//! [`Dispatcher`] retries exactly those (`SimError::is_transient`) with
//! bounded exponential backoff under a per-job timeout, and passes every
//! deterministic circuit error straight through. Because a retry reuses the
//! identical `(circuit, shots, seed)`, a job that eventually succeeds is
//! bit-identical to one that succeeded first try.

use crate::clock::{Clock, SystemClock};
use edm_core::{Backend, BatchJob};
use qcir::Circuit;
use qsim::{Counts, SimError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bounds on the dispatcher's retry behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds; doubles per retry.
    pub base_backoff_ms: u64,
    /// Upper bound on any single backoff.
    pub max_backoff_ms: u64,
    /// Wall-clock budget per job, measured from dispatch; a retry whose
    /// backoff would overrun it is not attempted.
    pub job_timeout_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
            job_timeout_ms: 30_000,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `k` (1-based): `base * 2^(k-1)`, capped at
    /// `max_backoff_ms`.
    pub fn backoff_ms(&self, k: u32) -> u64 {
        let doubled = self
            .base_backoff_ms
            .saturating_mul(1u64.checked_shl(k.saturating_sub(1)).unwrap_or(u64::MAX));
        doubled.min(self.max_backoff_ms)
    }
}

/// A [`Backend`] wrapper that retries transient failures.
///
/// Deterministic circuit errors pass through untouched. Counters
/// ([`Dispatcher::retries`], [`Dispatcher::exhausted`],
/// [`Dispatcher::timeouts`]) feed the service stats.
pub struct Dispatcher<B> {
    inner: B,
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
    retries: AtomicU64,
    exhausted: AtomicU64,
    timeouts: AtomicU64,
}

impl<B: Backend> Dispatcher<B> {
    /// Wraps `inner` under `policy` with the real system clock.
    pub fn new(inner: B, policy: RetryPolicy) -> Self {
        Dispatcher::with_clock(inner, policy, Arc::new(SystemClock::new()))
    }

    /// Wraps `inner` with an explicit clock (tests pass
    /// [`ManualClock`](crate::clock::ManualClock)).
    pub fn with_clock(inner: B, policy: RetryPolicy, clock: Arc<dyn Clock>) -> Self {
        Dispatcher {
            inner,
            policy,
            clock,
            retries: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Total retry attempts performed (not jobs retried).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::SeqCst)
    }

    /// Jobs that failed even after the full retry budget.
    pub fn exhausted(&self) -> u64 {
        self.exhausted.load(Ordering::SeqCst)
    }

    /// Jobs whose retrying was cut short by the per-job timeout.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::SeqCst)
    }

    /// Retries a transiently failed job until success, a deterministic
    /// error, retry exhaustion, or the deadline. `attempt` must repeat the
    /// exact original execution (same entry point, same inputs) so a late
    /// success is bit-identical to a first-try success.
    fn retry(
        &self,
        deadline_ms: u64,
        mut last: SimError,
        attempt: impl Fn() -> Result<Counts, SimError>,
    ) -> Result<Counts, SimError> {
        for k in 1..=self.policy.max_retries {
            let backoff = self.policy.backoff_ms(k);
            if self.clock.now_ms().saturating_add(backoff) > deadline_ms {
                self.timeouts.fetch_add(1, Ordering::SeqCst);
                edm_telemetry::counter!(
                    "edm_serve_retry_timeouts_total",
                    "Jobs whose retrying was cut short by the per-job timeout"
                )
                .inc();
                return Err(SimError::BackendUnavailable {
                    reason: "per-job timeout exceeded before the retry budget",
                });
            }
            self.clock.sleep_ms(backoff);
            self.retries.fetch_add(1, Ordering::SeqCst);
            edm_telemetry::counter!(
                "edm_serve_retries_total",
                "Retry attempts performed by the dispatcher"
            )
            .inc();
            match attempt() {
                Ok(counts) => return Ok(counts),
                Err(e) if !e.is_transient() => return Err(e),
                Err(e) => last = e,
            }
        }
        self.exhausted.fetch_add(1, Ordering::SeqCst);
        edm_telemetry::counter!(
            "edm_serve_retry_exhausted_total",
            "Jobs that failed even after the full retry budget"
        )
        .inc();
        Err(last)
    }
}

impl<B: Backend> Backend for Dispatcher<B> {
    fn execute(&self, circuit: &Circuit, shots: u64, seed: u64) -> Result<Counts, SimError> {
        let deadline = self
            .clock
            .now_ms()
            .saturating_add(self.policy.job_timeout_ms);
        match self.inner.execute(circuit, shots, seed) {
            Ok(counts) => Ok(counts),
            Err(e) if !e.is_transient() => Err(e),
            Err(e) => self.retry(deadline, e, || self.inner.execute(circuit, shots, seed)),
        }
    }

    fn execute_batch(
        &self,
        jobs: &[BatchJob<'_>],
        threads: usize,
    ) -> Vec<Result<Counts, SimError>> {
        // One parallel pass through the inner backend, then serial retries
        // for the (rare) transient stragglers. A straggler is re-run as a
        // one-job batch: a backend's batch seed schedule may legitimately
        // differ from its single-circuit schedule (the simulator's does),
        // and per-job batch results must not depend on batch composition,
        // so this reproduces the original execution exactly. The timeout
        // window is measured from batch dispatch.
        let deadline = self
            .clock
            .now_ms()
            .saturating_add(self.policy.job_timeout_ms);
        let mut out = self.inner.execute_batch(jobs, threads);
        for (job, slot) in jobs.iter().zip(out.iter_mut()) {
            if let Err(e) = slot {
                if e.is_transient() {
                    *slot = self.retry(deadline, e.clone(), || {
                        self.inner
                            .execute_batch(std::slice::from_ref(job), 1)
                            .pop()
                            .expect("one job in, one result out")
                    });
                }
            }
        }
        out
    }
}

/// A fault-injecting [`Backend`] test double.
///
/// Fails each distinct job (keyed by seed) with a transient
/// [`SimError::BackendUnavailable`] for its first `failures_per_job`
/// attempts, then delegates to the wrapped backend. Used to prove the
/// dispatcher's retry and give-up behavior; exported so downstream crates
/// can fault-inject their own integration tests.
pub struct FlakyBackend<B> {
    inner: B,
    failures_per_job: u32,
    attempts: Mutex<BTreeMap<u64, u32>>,
}

impl<B: Backend> FlakyBackend<B> {
    /// Wraps `inner`, injecting `failures_per_job` transient failures per
    /// distinct job seed.
    pub fn new(inner: B, failures_per_job: u32) -> Self {
        FlakyBackend {
            inner,
            failures_per_job,
            attempts: Mutex::new(BTreeMap::new()),
        }
    }

    /// Total injected failures so far.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn injected(&self) -> u64 {
        self.attempts
            .lock()
            .expect("attempts lock poisoned")
            .values()
            .map(|&n| u64::from(n.min(self.failures_per_job)))
            .sum()
    }
}

impl<B: Backend> Backend for FlakyBackend<B> {
    fn execute(&self, circuit: &Circuit, shots: u64, seed: u64) -> Result<Counts, SimError> {
        {
            let mut attempts = self.attempts.lock().expect("attempts lock poisoned");
            let n = attempts.entry(seed).or_insert(0);
            if *n < self.failures_per_job {
                *n += 1;
                return Err(SimError::BackendUnavailable {
                    reason: "injected fault",
                });
            }
        }
        self.inner.execute(circuit, shots, seed)
    }

    fn execute_batch(
        &self,
        jobs: &[BatchJob<'_>],
        threads: usize,
    ) -> Vec<Result<Counts, SimError>> {
        // Inject per job, then delegate the survivors as one sub-batch.
        // Per-job batch results must not depend on batch composition, so
        // sub-batching keeps surviving jobs bit-identical to a fault-free
        // full batch — which is exactly what the dispatcher tests assert.
        let injected: Vec<bool> = {
            let mut attempts = self.attempts.lock().expect("attempts lock poisoned");
            jobs.iter()
                .map(|job| {
                    let n = attempts.entry(job.seed).or_insert(0);
                    if *n < self.failures_per_job {
                        *n += 1;
                        true
                    } else {
                        false
                    }
                })
                .collect()
        };
        let survivors: Vec<BatchJob<'_>> = jobs
            .iter()
            .zip(&injected)
            .filter(|(_, &inj)| !inj)
            .map(|(job, _)| *job)
            .collect();
        let mut passed = self.inner.execute_batch(&survivors, threads).into_iter();
        injected
            .into_iter()
            .map(|inj| {
                if inj {
                    Err(SimError::BackendUnavailable {
                        reason: "injected fault",
                    })
                } else {
                    passed.next().expect("one result per surviving job")
                }
            })
            .collect()
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive transient failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker fails fast before admitting one half-open
    /// probe, in clock milliseconds.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown_ms: 5_000,
        }
    }
}

/// Where a [`CircuitBreaker`] currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BreakerState {
    /// Calls pass through; consecutive transient failures are counted.
    Closed,
    /// Calls fail fast until the cooldown elapses.
    Open,
    /// One probe call is in flight; its outcome decides Closed vs Open.
    HalfOpen,
}

/// Counter snapshot of one breaker, folded into the service stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BreakerStats {
    /// The admission state right now.
    pub state: BreakerState,
    /// Times the breaker tripped open (including a failed half-open probe
    /// re-opening it).
    pub trips: u64,
    /// Calls refused without touching the backend while open.
    pub fast_failures: u64,
    /// Transient failures since the last success.
    pub consecutive_failures: u32,
}

struct BreakerCore {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_ms: u64,
}

/// A [`Backend`] wrapper that stops hammering a dead backend.
///
/// After `failure_threshold` *consecutive* transient failures the breaker
/// opens and every call fails fast with a transient
/// [`SimError::BackendUnavailable`] — no backend round-trip, no retry
/// storm. Once `cooldown_ms` elapses, exactly one probe call is admitted
/// (half-open); its success closes the breaker, another transient failure
/// re-opens it for a fresh cooldown. Deterministic circuit errors neither
/// trip nor hold the breaker open: they prove the backend is alive and
/// reset the failure streak.
///
/// Layering: put the breaker *outside* the [`Dispatcher`]
/// (`CircuitBreaker<Dispatcher<B>>`, as
/// [`JobService`](crate::service::JobService) does) so an open breaker
/// skips the whole backoff schedule instead of sleeping through it.
pub struct CircuitBreaker<B> {
    inner: B,
    config: BreakerConfig,
    clock: Arc<dyn Clock>,
    core: Mutex<BreakerCore>,
    trips: AtomicU64,
    fast_failures: AtomicU64,
}

impl<B: Backend> CircuitBreaker<B> {
    /// Wraps `inner` under `config` with the real system clock.
    pub fn new(inner: B, config: BreakerConfig) -> Self {
        CircuitBreaker::with_clock(inner, config, Arc::new(SystemClock::new()))
    }

    /// Wraps `inner` with an explicit clock (tests pass
    /// [`ManualClock`](crate::clock::ManualClock)).
    pub fn with_clock(inner: B, config: BreakerConfig, clock: Arc<dyn Clock>) -> Self {
        CircuitBreaker {
            inner,
            config,
            clock,
            core: Mutex::new(BreakerCore {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at_ms: 0,
            }),
            trips: AtomicU64::new(0),
            fast_failures: AtomicU64::new(0),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The breaker tuning in force.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Counter snapshot for the stats endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn stats(&self) -> BreakerStats {
        let core = self.core.lock().expect("breaker lock poisoned");
        BreakerStats {
            state: core.state,
            trips: self.trips.load(Ordering::SeqCst),
            fast_failures: self.fast_failures.load(Ordering::SeqCst),
            consecutive_failures: core.consecutive_failures,
        }
    }

    /// The admission state right now (an elapsed cooldown still reports
    /// `Open` until a call actually probes).
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn state(&self) -> BreakerState {
        self.core.lock().expect("breaker lock poisoned").state
    }

    /// Decides whether a call may reach the backend, performing the
    /// `Open -> HalfOpen` transition when the cooldown has elapsed.
    fn admit(&self) -> bool {
        let mut core = self.core.lock().expect("breaker lock poisoned");
        match core.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if self.clock.now_ms() >= core.opened_at_ms.saturating_add(self.config.cooldown_ms)
                {
                    core.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
            // A probe is already in flight; don't pile on.
            BreakerState::HalfOpen => false,
        }
    }

    /// Folds one backend outcome into the breaker state. Anything that is
    /// not a transient failure — success or deterministic error — proves
    /// the backend responded and resets the streak.
    fn observe<T>(&self, outcome: &Result<T, SimError>) {
        let transient_failure = matches!(outcome, Err(e) if e.is_transient());
        let mut core = self.core.lock().expect("breaker lock poisoned");
        if !transient_failure {
            core.state = BreakerState::Closed;
            core.consecutive_failures = 0;
            return;
        }
        core.consecutive_failures = core.consecutive_failures.saturating_add(1);
        let trip = match core.state {
            // A failed probe re-opens immediately.
            BreakerState::HalfOpen => true,
            _ => core.consecutive_failures >= self.config.failure_threshold,
        };
        if trip && core.state != BreakerState::Open {
            core.state = BreakerState::Open;
            core.opened_at_ms = self.clock.now_ms();
            self.trips.fetch_add(1, Ordering::SeqCst);
            edm_telemetry::counter!(
                "edm_serve_breaker_trips_total",
                "Times the circuit breaker tripped open"
            )
            .inc();
        }
    }

    fn fail_fast(&self) -> SimError {
        self.fast_failures.fetch_add(1, Ordering::SeqCst);
        edm_telemetry::counter!(
            "edm_serve_breaker_fast_failures_total",
            "Calls refused without touching the backend while the breaker was open"
        )
        .inc();
        SimError::BackendUnavailable {
            reason: "circuit breaker open; backend cooling down",
        }
    }
}

impl<B: Backend> Backend for CircuitBreaker<B> {
    fn execute(&self, circuit: &Circuit, shots: u64, seed: u64) -> Result<Counts, SimError> {
        if !self.admit() {
            return Err(self.fail_fast());
        }
        let out = self.inner.execute(circuit, shots, seed);
        self.observe(&out);
        out
    }

    fn execute_batch(
        &self,
        jobs: &[BatchJob<'_>],
        threads: usize,
    ) -> Vec<Result<Counts, SimError>> {
        if !self.admit() {
            return jobs.iter().map(|_| Err(self.fail_fast())).collect();
        }
        let out = self.inner.execute_batch(jobs, threads);
        // Fold outcomes in job order so "consecutive" means the same thing
        // it would have meant for sequential execution.
        for slot in &out {
            self.observe(slot);
        }
        out
    }
}

/// A deterministic chaos-injecting [`Backend`] test double.
///
/// Each *attempt* at a job fails transiently with probability
/// `fail_percent` (decided by hashing `(salt, seed, attempt number)` with
/// the same SplitMix64 fork the seed schedule uses, so chaos runs replay
/// exactly). Seeds registered via [`ChaosBackend::kill_seed`] fail
/// transiently on every attempt — the dispatcher's retries exhaust and the
/// member fails permanently, which is how the chaos suite produces a
/// degraded ensemble on demand.
pub struct ChaosBackend<B> {
    inner: B,
    fail_percent: u32,
    salt: u64,
    dead_seeds: std::collections::BTreeSet<u64>,
    attempts: Mutex<BTreeMap<u64, u64>>,
    injected: AtomicU64,
}

impl<B: Backend> ChaosBackend<B> {
    /// Wraps `inner`, failing roughly `fail_percent`% of attempts. The
    /// `salt` picks which attempts; two chaos backends with the same salt
    /// inject identically.
    ///
    /// # Panics
    ///
    /// Panics if `fail_percent > 100`.
    pub fn new(inner: B, fail_percent: u32, salt: u64) -> Self {
        assert!(fail_percent <= 100, "fail_percent is a percentage");
        ChaosBackend {
            inner,
            fail_percent,
            salt,
            dead_seeds: std::collections::BTreeSet::new(),
            attempts: Mutex::new(BTreeMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Marks a job seed as permanently dead: every attempt fails
    /// transiently, so retries never rescue it.
    pub fn kill_seed(&mut self, seed: u64) {
        self.dead_seeds.insert(seed);
    }

    /// Total injected failures so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    fn inject(&self, seed: u64) -> bool {
        if self.dead_seeds.contains(&seed) {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        let attempt = {
            let mut attempts = self.attempts.lock().expect("attempts lock poisoned");
            let n = attempts.entry(seed).or_insert(0);
            *n += 1;
            *n
        };
        let roll = qsim::rngstream::fork(self.salt ^ seed, attempt) % 100;
        let hit = roll < u64::from(self.fail_percent);
        if hit {
            self.injected.fetch_add(1, Ordering::SeqCst);
        }
        hit
    }
}

impl<B: Backend> Backend for ChaosBackend<B> {
    fn execute(&self, circuit: &Circuit, shots: u64, seed: u64) -> Result<Counts, SimError> {
        if self.inject(seed) {
            return Err(SimError::BackendUnavailable {
                reason: "injected chaos",
            });
        }
        self.inner.execute(circuit, shots, seed)
    }

    fn execute_batch(
        &self,
        jobs: &[BatchJob<'_>],
        threads: usize,
    ) -> Vec<Result<Counts, SimError>> {
        // Same sub-batching trick as FlakyBackend: surviving jobs must stay
        // bit-identical to a chaos-free batch.
        let injected: Vec<bool> = jobs.iter().map(|job| self.inject(job.seed)).collect();
        let survivors: Vec<BatchJob<'_>> = jobs
            .iter()
            .zip(&injected)
            .filter(|(_, &inj)| !inj)
            .map(|(job, _)| *job)
            .collect();
        let mut passed = self.inner.execute_batch(&survivors, threads).into_iter();
        injected
            .into_iter()
            .map(|inj| {
                if inj {
                    Err(SimError::BackendUnavailable {
                        reason: "injected chaos",
                    })
                } else {
                    passed.next().expect("one result per surviving job")
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    /// Succeeds every job with a fixed all-zeros histogram.
    struct OkBackend;

    impl Backend for OkBackend {
        fn execute(&self, circuit: &Circuit, shots: u64, _seed: u64) -> Result<Counts, SimError> {
            let mut counts = Counts::new(circuit.num_clbits());
            counts.record_n(0, shots);
            Ok(counts)
        }
    }

    /// Fails every job with a transient error, forever.
    struct DownBackend;

    impl Backend for DownBackend {
        fn execute(&self, _: &Circuit, _: u64, _: u64) -> Result<Counts, SimError> {
            Err(SimError::BackendUnavailable {
                reason: "backend down",
            })
        }
    }

    fn circuit() -> Circuit {
        let mut c = Circuit::new(1, 1);
        c.h(0).measure(0, 0);
        c
    }

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
            job_timeout_ms: 30_000,
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            base_backoff_ms: 10,
            max_backoff_ms: 50,
            ..policy()
        };
        assert_eq!(p.backoff_ms(1), 10);
        assert_eq!(p.backoff_ms(2), 20);
        assert_eq!(p.backoff_ms(3), 40);
        assert_eq!(p.backoff_ms(4), 50);
        assert_eq!(p.backoff_ms(63), 50);
        assert_eq!(p.backoff_ms(200), 50);
    }

    #[test]
    fn flaky_job_succeeds_after_retries() {
        let clock = Arc::new(ManualClock::new());
        let flaky = FlakyBackend::new(OkBackend, 2);
        let d = Dispatcher::with_clock(flaky, policy(), clock.clone());
        let counts = d.execute(&circuit(), 64, 7).unwrap();
        assert_eq!(counts.shots(), 64);
        assert_eq!(d.retries(), 2);
        assert_eq!(d.exhausted(), 0);
        // Exponential schedule: 10ms then 20ms.
        assert_eq!(clock.sleeps(), vec![10, 20]);
        assert_eq!(d.inner().injected(), 2);
    }

    #[test]
    fn budget_exhaustion_surfaces_terminal_error() {
        let clock = Arc::new(ManualClock::new());
        let d = Dispatcher::with_clock(DownBackend, policy(), clock.clone());
        let err = d.execute(&circuit(), 64, 7).unwrap_err();
        assert!(err.is_transient());
        assert!(err.to_string().contains("backend down"));
        assert_eq!(d.retries(), 3);
        assert_eq!(d.exhausted(), 1);
        assert_eq!(clock.sleeps(), vec![10, 20, 40]);
    }

    #[test]
    fn deterministic_errors_pass_through_without_retry() {
        struct BadCircuitBackend;
        impl Backend for BadCircuitBackend {
            fn execute(&self, _: &Circuit, _: u64, _: u64) -> Result<Counts, SimError> {
                Err(SimError::UnsupportedGate { name: "ccx" })
            }
        }
        let clock = Arc::new(ManualClock::new());
        let d = Dispatcher::with_clock(BadCircuitBackend, policy(), clock.clone());
        let err = d.execute(&circuit(), 64, 7).unwrap_err();
        assert_eq!(err, SimError::UnsupportedGate { name: "ccx" });
        assert_eq!(d.retries(), 0);
        assert!(clock.sleeps().is_empty());
    }

    #[test]
    fn per_job_timeout_cuts_retrying_short() {
        let clock = Arc::new(ManualClock::new());
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_ms: 100,
            max_backoff_ms: 10_000,
            job_timeout_ms: 150,
        };
        let d = Dispatcher::with_clock(DownBackend, p, clock.clone());
        let err = d.execute(&circuit(), 64, 7).unwrap_err();
        assert!(err.to_string().contains("timeout"));
        // First retry (100ms backoff) fits the 150ms budget; the second
        // (200ms) would overrun it and is never slept.
        assert_eq!(d.retries(), 1);
        assert_eq!(d.timeouts(), 1);
        assert_eq!(clock.sleeps(), vec![100]);
    }

    #[test]
    fn batch_retries_only_failed_jobs_bit_identically() {
        let clock = Arc::new(ManualClock::new());
        // Seed 5 fails twice; seed 6 never fails.
        let flaky = FlakyBackend::new(OkBackend, 2);
        {
            // Pre-burn seed 6's failures so only seed 5 is flaky.
            let mut attempts = flaky.attempts.lock().unwrap();
            attempts.insert(6, 2);
        }
        let d = Dispatcher::with_clock(flaky, policy(), clock.clone());
        let c = circuit();
        let jobs = [BatchJob::new(&c, 32, 5), BatchJob::new(&c, 64, 6)];
        let out = d.execute_batch(&jobs, 1);
        assert_eq!(out[0].as_ref().unwrap().shots(), 32);
        assert_eq!(out[1].as_ref().unwrap().shots(), 64);
        assert_eq!(d.retries(), 2);
        // The retried result matches a clean backend bit for bit.
        let clean = OkBackend.execute(&c, 32, 5).unwrap();
        assert_eq!(out[0].as_ref().unwrap(), &clean);
    }

    #[test]
    fn zero_max_retries_disables_retrying() {
        let clock = Arc::new(ManualClock::new());
        let p = RetryPolicy {
            max_retries: 0,
            ..policy()
        };
        let d = Dispatcher::with_clock(DownBackend, p, clock.clone());
        assert!(d.execute(&circuit(), 8, 1).is_err());
        assert_eq!(d.retries(), 0);
        assert_eq!(d.exhausted(), 1);
    }

    fn breaker_config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 100,
        }
    }

    #[test]
    fn breaker_trips_after_consecutive_transient_failures() {
        let clock = Arc::new(ManualClock::new());
        let b = CircuitBreaker::with_clock(DownBackend, breaker_config(), clock.clone());
        let c = circuit();
        for _ in 0..3 {
            assert!(b.execute(&c, 8, 1).is_err());
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.stats().trips, 1);
        // While open, calls fail fast without touching the backend.
        let err = b.execute(&c, 8, 1).unwrap_err();
        assert!(err.is_transient());
        assert!(err.to_string().contains("circuit breaker open"));
        assert_eq!(b.stats().fast_failures, 1);
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let clock = Arc::new(ManualClock::new());
        // Fails exactly 3 attempts (keyed on seed 1), then recovers.
        let flaky = FlakyBackend::new(OkBackend, 3);
        let b = CircuitBreaker::with_clock(flaky, breaker_config(), clock.clone());
        let c = circuit();
        for _ in 0..3 {
            assert!(b.execute(&c, 8, 1).is_err());
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown not elapsed: still failing fast.
        clock.advance_ms(50);
        assert!(b.execute(&c, 8, 1).is_err());
        assert_eq!(b.stats().fast_failures, 1);
        // Cooldown elapsed: the probe goes through and closes the breaker.
        clock.advance_ms(50);
        assert!(b.execute(&c, 8, 1).is_ok());
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.stats().consecutive_failures, 0);
    }

    #[test]
    fn failed_probe_reopens_for_a_fresh_cooldown() {
        let clock = Arc::new(ManualClock::new());
        let b = CircuitBreaker::with_clock(DownBackend, breaker_config(), clock.clone());
        let c = circuit();
        for _ in 0..3 {
            assert!(b.execute(&c, 8, 1).is_err());
        }
        clock.advance_ms(100);
        // The probe reaches the (still dead) backend and re-opens.
        assert!(b.execute(&c, 8, 1).is_err());
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.stats().trips, 2);
        // The fresh cooldown starts at the probe, not the original trip.
        clock.advance_ms(50);
        let err = b.execute(&c, 8, 1).unwrap_err();
        assert!(err.to_string().contains("circuit breaker open"));
    }

    #[test]
    fn deterministic_errors_do_not_trip_the_breaker() {
        struct BadCircuitBackend;
        impl Backend for BadCircuitBackend {
            fn execute(&self, _: &Circuit, _: u64, _: u64) -> Result<Counts, SimError> {
                Err(SimError::UnsupportedGate { name: "ccx" })
            }
        }
        let clock = Arc::new(ManualClock::new());
        let b = CircuitBreaker::with_clock(BadCircuitBackend, breaker_config(), clock);
        let c = circuit();
        for _ in 0..10 {
            assert!(b.execute(&c, 8, 1).is_err());
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.stats().trips, 0);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let clock = Arc::new(ManualClock::new());
        // Each fresh seed fails twice then succeeds — never 3 in a row on
        // the streak counter because each success resets it.
        let flaky = FlakyBackend::new(OkBackend, 2);
        let b = CircuitBreaker::with_clock(flaky, breaker_config(), clock);
        let c = circuit();
        for seed in 0..4 {
            assert!(b.execute(&c, 8, seed).is_err());
            assert!(b.execute(&c, 8, seed).is_err());
            assert!(b.execute(&c, 8, seed).is_ok());
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.stats().trips, 0);
    }

    #[test]
    fn open_breaker_fails_a_whole_batch_fast() {
        let clock = Arc::new(ManualClock::new());
        let b = CircuitBreaker::with_clock(DownBackend, breaker_config(), clock);
        let c = circuit();
        let jobs = [BatchJob::new(&c, 8, 1), BatchJob::new(&c, 8, 2)];
        // Trip via a batch: 2 failures, then 1 more in the next batch.
        b.execute_batch(&jobs, 1);
        assert_eq!(b.stats().consecutive_failures, 2);
        assert!(b.execute(&c, 8, 3).is_err());
        assert_eq!(b.state(), BreakerState::Open);
        let out = b.execute_batch(&jobs, 1);
        assert_eq!(out.len(), 2);
        for slot in &out {
            assert!(slot.as_ref().unwrap_err().to_string().contains("breaker"));
        }
        assert_eq!(b.stats().fast_failures, 2);
    }

    #[test]
    fn chaos_injection_is_deterministic_and_roughly_calibrated() {
        let a = ChaosBackend::new(OkBackend, 30, 99);
        let b = ChaosBackend::new(OkBackend, 30, 99);
        let c = circuit();
        let mut fails = 0;
        for seed in 0..200 {
            let ra = a.execute(&c, 8, seed);
            let rb = b.execute(&c, 8, seed);
            assert_eq!(
                ra.is_err(),
                rb.is_err(),
                "same salt must inject identically"
            );
            fails += u32::from(ra.is_err());
        }
        // ~30% of 200; generous bounds, the point is "nonzero and not all".
        assert!((30..90).contains(&fails), "got {fails} failures");
        assert_eq!(a.injected(), u64::from(fails));
    }

    #[test]
    fn dead_seeds_fail_every_attempt_but_others_recover() {
        let mut chaos = ChaosBackend::new(OkBackend, 0, 1);
        chaos.kill_seed(42);
        let d = Dispatcher::with_clock(chaos, policy(), Arc::new(ManualClock::new()));
        let c = circuit();
        // The dead seed exhausts the dispatcher's whole retry budget.
        let err = d.execute(&c, 8, 42).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(d.retries(), 3);
        assert_eq!(d.exhausted(), 1);
        // A live seed sails through (0% ambient chaos here).
        assert!(d.execute(&c, 8, 43).is_ok());
    }

    #[test]
    fn chaos_batch_survivors_are_bit_identical_to_clean_runs() {
        use qsim::NoisySimulator;
        let device = qdevice::DeviceModel::synthesize(qdevice::presets::melbourne14(), 3);
        let chaos = ChaosBackend::new(NoisySimulator::from_device(&device), 50, 7);
        let clean = NoisySimulator::from_device(&device);
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure_all();
        let jobs: Vec<BatchJob<'_>> = (0..8).map(|seed| BatchJob::new(&c, 128, seed)).collect();
        let chaotic = chaos.execute_batch(&jobs, 2);
        let reference = clean.execute_batch(&jobs, 2);
        let mut survivors = 0;
        for (got, want) in chaotic.iter().zip(&reference) {
            if let Ok(counts) = got {
                assert_eq!(counts, want.as_ref().unwrap());
                survivors += 1;
            }
        }
        assert!(survivors > 0, "50% chaos should leave some survivors");
    }
}
