//! The retry-aware dispatcher: a [`Backend`] wrapper that survives
//! transient failures.
//!
//! Real backends drop jobs for reasons that have nothing to do with the
//! circuit — queue contention, lost links, worker restarts. The
//! [`Dispatcher`] retries exactly those (`SimError::is_transient`) with
//! bounded exponential backoff under a per-job timeout, and passes every
//! deterministic circuit error straight through. Because a retry reuses the
//! identical `(circuit, shots, seed)`, a job that eventually succeeds is
//! bit-identical to one that succeeded first try.

use crate::clock::{Clock, SystemClock};
use edm_core::{Backend, BatchJob};
use qcir::Circuit;
use qsim::{Counts, SimError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bounds on the dispatcher's retry behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds; doubles per retry.
    pub base_backoff_ms: u64,
    /// Upper bound on any single backoff.
    pub max_backoff_ms: u64,
    /// Wall-clock budget per job, measured from dispatch; a retry whose
    /// backoff would overrun it is not attempted.
    pub job_timeout_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
            job_timeout_ms: 30_000,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `k` (1-based): `base * 2^(k-1)`, capped at
    /// `max_backoff_ms`.
    pub fn backoff_ms(&self, k: u32) -> u64 {
        let doubled = self
            .base_backoff_ms
            .saturating_mul(1u64.checked_shl(k.saturating_sub(1)).unwrap_or(u64::MAX));
        doubled.min(self.max_backoff_ms)
    }
}

/// A [`Backend`] wrapper that retries transient failures.
///
/// Deterministic circuit errors pass through untouched. Counters
/// ([`Dispatcher::retries`], [`Dispatcher::exhausted`],
/// [`Dispatcher::timeouts`]) feed the service stats.
pub struct Dispatcher<B> {
    inner: B,
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
    retries: AtomicU64,
    exhausted: AtomicU64,
    timeouts: AtomicU64,
}

impl<B: Backend> Dispatcher<B> {
    /// Wraps `inner` under `policy` with the real system clock.
    pub fn new(inner: B, policy: RetryPolicy) -> Self {
        Dispatcher::with_clock(inner, policy, Arc::new(SystemClock::new()))
    }

    /// Wraps `inner` with an explicit clock (tests pass
    /// [`ManualClock`](crate::clock::ManualClock)).
    pub fn with_clock(inner: B, policy: RetryPolicy, clock: Arc<dyn Clock>) -> Self {
        Dispatcher {
            inner,
            policy,
            clock,
            retries: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Total retry attempts performed (not jobs retried).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::SeqCst)
    }

    /// Jobs that failed even after the full retry budget.
    pub fn exhausted(&self) -> u64 {
        self.exhausted.load(Ordering::SeqCst)
    }

    /// Jobs whose retrying was cut short by the per-job timeout.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::SeqCst)
    }

    /// Retries a transiently failed job until success, a deterministic
    /// error, retry exhaustion, or the deadline. `attempt` must repeat the
    /// exact original execution (same entry point, same inputs) so a late
    /// success is bit-identical to a first-try success.
    fn retry(
        &self,
        deadline_ms: u64,
        mut last: SimError,
        attempt: impl Fn() -> Result<Counts, SimError>,
    ) -> Result<Counts, SimError> {
        for k in 1..=self.policy.max_retries {
            let backoff = self.policy.backoff_ms(k);
            if self.clock.now_ms().saturating_add(backoff) > deadline_ms {
                self.timeouts.fetch_add(1, Ordering::SeqCst);
                return Err(SimError::BackendUnavailable {
                    reason: "per-job timeout exceeded before the retry budget",
                });
            }
            self.clock.sleep_ms(backoff);
            self.retries.fetch_add(1, Ordering::SeqCst);
            match attempt() {
                Ok(counts) => return Ok(counts),
                Err(e) if !e.is_transient() => return Err(e),
                Err(e) => last = e,
            }
        }
        self.exhausted.fetch_add(1, Ordering::SeqCst);
        Err(last)
    }
}

impl<B: Backend> Backend for Dispatcher<B> {
    fn execute(&self, circuit: &Circuit, shots: u64, seed: u64) -> Result<Counts, SimError> {
        let deadline = self
            .clock
            .now_ms()
            .saturating_add(self.policy.job_timeout_ms);
        match self.inner.execute(circuit, shots, seed) {
            Ok(counts) => Ok(counts),
            Err(e) if !e.is_transient() => Err(e),
            Err(e) => self.retry(deadline, e, || self.inner.execute(circuit, shots, seed)),
        }
    }

    fn execute_batch(
        &self,
        jobs: &[BatchJob<'_>],
        threads: usize,
    ) -> Vec<Result<Counts, SimError>> {
        // One parallel pass through the inner backend, then serial retries
        // for the (rare) transient stragglers. A straggler is re-run as a
        // one-job batch: a backend's batch seed schedule may legitimately
        // differ from its single-circuit schedule (the simulator's does),
        // and per-job batch results must not depend on batch composition,
        // so this reproduces the original execution exactly. The timeout
        // window is measured from batch dispatch.
        let deadline = self
            .clock
            .now_ms()
            .saturating_add(self.policy.job_timeout_ms);
        let mut out = self.inner.execute_batch(jobs, threads);
        for (job, slot) in jobs.iter().zip(out.iter_mut()) {
            if let Err(e) = slot {
                if e.is_transient() {
                    *slot = self.retry(deadline, e.clone(), || {
                        self.inner
                            .execute_batch(std::slice::from_ref(job), 1)
                            .pop()
                            .expect("one job in, one result out")
                    });
                }
            }
        }
        out
    }
}

/// A fault-injecting [`Backend`] test double.
///
/// Fails each distinct job (keyed by seed) with a transient
/// [`SimError::BackendUnavailable`] for its first `failures_per_job`
/// attempts, then delegates to the wrapped backend. Used to prove the
/// dispatcher's retry and give-up behavior; exported so downstream crates
/// can fault-inject their own integration tests.
pub struct FlakyBackend<B> {
    inner: B,
    failures_per_job: u32,
    attempts: Mutex<BTreeMap<u64, u32>>,
}

impl<B: Backend> FlakyBackend<B> {
    /// Wraps `inner`, injecting `failures_per_job` transient failures per
    /// distinct job seed.
    pub fn new(inner: B, failures_per_job: u32) -> Self {
        FlakyBackend {
            inner,
            failures_per_job,
            attempts: Mutex::new(BTreeMap::new()),
        }
    }

    /// Total injected failures so far.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn injected(&self) -> u64 {
        self.attempts
            .lock()
            .expect("attempts lock poisoned")
            .values()
            .map(|&n| u64::from(n.min(self.failures_per_job)))
            .sum()
    }
}

impl<B: Backend> Backend for FlakyBackend<B> {
    fn execute(&self, circuit: &Circuit, shots: u64, seed: u64) -> Result<Counts, SimError> {
        {
            let mut attempts = self.attempts.lock().expect("attempts lock poisoned");
            let n = attempts.entry(seed).or_insert(0);
            if *n < self.failures_per_job {
                *n += 1;
                return Err(SimError::BackendUnavailable {
                    reason: "injected fault",
                });
            }
        }
        self.inner.execute(circuit, shots, seed)
    }

    fn execute_batch(
        &self,
        jobs: &[BatchJob<'_>],
        threads: usize,
    ) -> Vec<Result<Counts, SimError>> {
        // Inject per job, then delegate the survivors as one sub-batch.
        // Per-job batch results must not depend on batch composition, so
        // sub-batching keeps surviving jobs bit-identical to a fault-free
        // full batch — which is exactly what the dispatcher tests assert.
        let injected: Vec<bool> = {
            let mut attempts = self.attempts.lock().expect("attempts lock poisoned");
            jobs.iter()
                .map(|job| {
                    let n = attempts.entry(job.seed).or_insert(0);
                    if *n < self.failures_per_job {
                        *n += 1;
                        true
                    } else {
                        false
                    }
                })
                .collect()
        };
        let survivors: Vec<BatchJob<'_>> = jobs
            .iter()
            .zip(&injected)
            .filter(|(_, &inj)| !inj)
            .map(|(job, _)| *job)
            .collect();
        let mut passed = self.inner.execute_batch(&survivors, threads).into_iter();
        injected
            .into_iter()
            .map(|inj| {
                if inj {
                    Err(SimError::BackendUnavailable {
                        reason: "injected fault",
                    })
                } else {
                    passed.next().expect("one result per surviving job")
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    /// Succeeds every job with a fixed all-zeros histogram.
    struct OkBackend;

    impl Backend for OkBackend {
        fn execute(&self, circuit: &Circuit, shots: u64, _seed: u64) -> Result<Counts, SimError> {
            let mut counts = Counts::new(circuit.num_clbits());
            counts.record_n(0, shots);
            Ok(counts)
        }
    }

    /// Fails every job with a transient error, forever.
    struct DownBackend;

    impl Backend for DownBackend {
        fn execute(&self, _: &Circuit, _: u64, _: u64) -> Result<Counts, SimError> {
            Err(SimError::BackendUnavailable {
                reason: "backend down",
            })
        }
    }

    fn circuit() -> Circuit {
        let mut c = Circuit::new(1, 1);
        c.h(0).measure(0, 0);
        c
    }

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
            job_timeout_ms: 30_000,
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            base_backoff_ms: 10,
            max_backoff_ms: 50,
            ..policy()
        };
        assert_eq!(p.backoff_ms(1), 10);
        assert_eq!(p.backoff_ms(2), 20);
        assert_eq!(p.backoff_ms(3), 40);
        assert_eq!(p.backoff_ms(4), 50);
        assert_eq!(p.backoff_ms(63), 50);
        assert_eq!(p.backoff_ms(200), 50);
    }

    #[test]
    fn flaky_job_succeeds_after_retries() {
        let clock = Arc::new(ManualClock::new());
        let flaky = FlakyBackend::new(OkBackend, 2);
        let d = Dispatcher::with_clock(flaky, policy(), clock.clone());
        let counts = d.execute(&circuit(), 64, 7).unwrap();
        assert_eq!(counts.shots(), 64);
        assert_eq!(d.retries(), 2);
        assert_eq!(d.exhausted(), 0);
        // Exponential schedule: 10ms then 20ms.
        assert_eq!(clock.sleeps(), vec![10, 20]);
        assert_eq!(d.inner().injected(), 2);
    }

    #[test]
    fn budget_exhaustion_surfaces_terminal_error() {
        let clock = Arc::new(ManualClock::new());
        let d = Dispatcher::with_clock(DownBackend, policy(), clock.clone());
        let err = d.execute(&circuit(), 64, 7).unwrap_err();
        assert!(err.is_transient());
        assert!(err.to_string().contains("backend down"));
        assert_eq!(d.retries(), 3);
        assert_eq!(d.exhausted(), 1);
        assert_eq!(clock.sleeps(), vec![10, 20, 40]);
    }

    #[test]
    fn deterministic_errors_pass_through_without_retry() {
        struct BadCircuitBackend;
        impl Backend for BadCircuitBackend {
            fn execute(&self, _: &Circuit, _: u64, _: u64) -> Result<Counts, SimError> {
                Err(SimError::UnsupportedGate { name: "ccx" })
            }
        }
        let clock = Arc::new(ManualClock::new());
        let d = Dispatcher::with_clock(BadCircuitBackend, policy(), clock.clone());
        let err = d.execute(&circuit(), 64, 7).unwrap_err();
        assert_eq!(err, SimError::UnsupportedGate { name: "ccx" });
        assert_eq!(d.retries(), 0);
        assert!(clock.sleeps().is_empty());
    }

    #[test]
    fn per_job_timeout_cuts_retrying_short() {
        let clock = Arc::new(ManualClock::new());
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_ms: 100,
            max_backoff_ms: 10_000,
            job_timeout_ms: 150,
        };
        let d = Dispatcher::with_clock(DownBackend, p, clock.clone());
        let err = d.execute(&circuit(), 64, 7).unwrap_err();
        assert!(err.to_string().contains("timeout"));
        // First retry (100ms backoff) fits the 150ms budget; the second
        // (200ms) would overrun it and is never slept.
        assert_eq!(d.retries(), 1);
        assert_eq!(d.timeouts(), 1);
        assert_eq!(clock.sleeps(), vec![100]);
    }

    #[test]
    fn batch_retries_only_failed_jobs_bit_identically() {
        let clock = Arc::new(ManualClock::new());
        // Seed 5 fails twice; seed 6 never fails.
        let flaky = FlakyBackend::new(OkBackend, 2);
        {
            // Pre-burn seed 6's failures so only seed 5 is flaky.
            let mut attempts = flaky.attempts.lock().unwrap();
            attempts.insert(6, 2);
        }
        let d = Dispatcher::with_clock(flaky, policy(), clock.clone());
        let c = circuit();
        let jobs = [
            BatchJob {
                circuit: &c,
                shots: 32,
                seed: 5,
            },
            BatchJob {
                circuit: &c,
                shots: 64,
                seed: 6,
            },
        ];
        let out = d.execute_batch(&jobs, 1);
        assert_eq!(out[0].as_ref().unwrap().shots(), 32);
        assert_eq!(out[1].as_ref().unwrap().shots(), 64);
        assert_eq!(d.retries(), 2);
        // The retried result matches a clean backend bit for bit.
        let clean = OkBackend.execute(&c, 32, 5).unwrap();
        assert_eq!(out[0].as_ref().unwrap(), &clean);
    }

    #[test]
    fn zero_max_retries_disables_retrying() {
        let clock = Arc::new(ManualClock::new());
        let p = RetryPolicy {
            max_retries: 0,
            ..policy()
        };
        let d = Dispatcher::with_clock(DownBackend, p, clock.clone());
        assert!(d.execute(&circuit(), 8, 1).is_err());
        assert_eq!(d.retries(), 0);
        assert_eq!(d.exhausted(), 1);
    }
}
