//! Request parameter validation shared by `edm-cli` and the service.
//!
//! Both front-ends accept `--shots` / `--threads` style parameters; both
//! must reject the same degenerate values with the same wording, at the
//! boundary, instead of panicking somewhere inside the pipeline.

use std::fmt;

/// A rejected request parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// `shots` was zero.
    ZeroShots,
    /// `threads` was explicitly zero.
    ZeroThreads,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::ZeroShots => {
                write!(f, "shots must be at least 1 (got 0)")
            }
            ValidationError::ZeroThreads => {
                write!(
                    f,
                    "threads must be at least 1 (got 0); omit the flag to size by CPU count"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a shot budget: zero shots can never produce a histogram.
///
/// # Errors
///
/// Returns [`ValidationError::ZeroShots`] when `shots == 0`.
///
/// # Examples
///
/// ```
/// use edm_serve::validate;
/// assert_eq!(validate::shots(4096), Ok(4096));
/// assert!(validate::shots(0).is_err());
/// ```
pub fn shots(shots: u64) -> Result<u64, ValidationError> {
    if shots == 0 {
        Err(ValidationError::ZeroShots)
    } else {
        Ok(shots)
    }
}

/// Validates an *optional* thread cap: an absent flag means "size by CPU
/// count", but an explicit `0` is a user error, not auto mode.
///
/// # Errors
///
/// Returns [`ValidationError::ZeroThreads`] when `threads == Some(0)`.
///
/// # Examples
///
/// ```
/// use edm_serve::validate;
/// assert_eq!(validate::threads(None), Ok(None));
/// assert_eq!(validate::threads(Some(4)), Ok(Some(4)));
/// assert!(validate::threads(Some(0)).is_err());
/// ```
pub fn threads(threads: Option<u64>) -> Result<Option<usize>, ValidationError> {
    match threads {
        None => Ok(None),
        Some(0) => Err(ValidationError::ZeroThreads),
        Some(n) => Ok(Some(n as usize)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shots_rejects_only_zero() {
        assert_eq!(shots(1), Ok(1));
        assert_eq!(shots(u64::MAX), Ok(u64::MAX));
        assert_eq!(shots(0), Err(ValidationError::ZeroShots));
        assert!(ValidationError::ZeroShots.to_string().contains("got 0"));
    }

    #[test]
    fn threads_distinguishes_absent_from_explicit_zero() {
        assert_eq!(threads(None), Ok(None));
        assert_eq!(threads(Some(8)), Ok(Some(8)));
        assert_eq!(threads(Some(0)), Err(ValidationError::ZeroThreads));
        assert!(ValidationError::ZeroThreads
            .to_string()
            .contains("omit the flag"));
    }
}
