//! `edm-serve` — a JSON-lines job service over the EDM pipeline.
//!
//! ```text
//! edm-serve [--device-seed N] [--threads N] [--queue N] [--cache N] [--batch N]
//! ```
//!
//! Reads one [`Request`](edm_serve::protocol::Request) JSON object per
//! stdin line, writes one [`Response`](edm_serve::protocol::Response) JSON
//! object per stdout line, and exits on `"Shutdown"` or EOF. The device is
//! the simulated IBMQ-14 (`melbourne14`) synthesized from `--device-seed`,
//! matching `edm-cli run` — so a served result is bit-identical to the
//! direct run with the same circuit, shots, and seed.

use edm_core::ControllerConfig;
use edm_serve::dispatch::ChaosBackend;
use edm_serve::exitcode;
use edm_serve::framing::{Frame, LineFramer};
use edm_serve::journal::JournalError;
use edm_serve::protocol::{DeviceStatus, JobSummary, MetricFamily, Request, Response};
use edm_serve::queue::JobRequest;
use edm_serve::service::{JobService, JobState, ServeConfig};
use edm_serve::validate;
use qcir::qasm;
use qdevice::{presets, DeviceModel};
use qsim::NoisySimulator;
use std::io::{Read, Write};
use std::process::ExitCode;

const USAGE: &str = "usage:
  edm-serve [--device-seed N] [--threads N] [--queue N] [--cache N] [--batch N]
            [--journal PATH] [--metrics-port N] [--trace-out PATH]
            [--controller] [--controller-log PATH] [--chaos-kill SEED:MEMBER]

Speaks JSON lines on stdin/stdout. Requests:
  {\"Submit\":{\"qasm\":\"...\",\"shots\":N,\"seed\":N,\"priority\":\"Normal\"}}
  {\"Poll\":{\"id\":N}}   {\"Trace\":{\"id\":N}}   \"Flush\"   \"Stats\"
  \"Metrics\"   \"FleetStats\"   \"BumpCalibration\"   \"Shutdown\"

Submit also accepts optional trace_id/parent_span fields: a client that
already opened a trace stamps them so the server's spans (admission,
planning, pool slices, assembly) join the client's trace.

--journal PATH appends a JSON-lines write-ahead journal of accepted jobs;
restarting with the same path replays unfinished jobs bit-identically.

--metrics-port N serves Prometheus text on http://127.0.0.1:N/metrics
(plus /metrics.json, /spans, and /healthz) and enables telemetry; port 0
picks an ephemeral port, printed to stderr as `metrics listening on ...`.
/spans accepts ?trace_id=ID (decimal or 0x-hex) and ?limit=N filters.

--trace-out PATH appends every finished span as one JSON line (enables
telemetry). The file is size-bounded: at 16 MiB it rotates once to
PATH.1, so traces survive long past the in-memory flight recorder.

--controller enables the closed-loop adaptive controller: per-circuit
feedback that reweights the WEDM merge, swaps persistently underperforming
ensemble members for spares, and recompiles the layout pool after a
calibration change. --controller-log PATH appends its decisions as JSON
lines.

--chaos-kill SEED:MEMBER (repeatable, test hook) permanently fails the
ensemble member at plan position MEMBER of any job submitted with seed
SEED, forcing the controller to observe real failures.

exit codes:
  0   success
  1   unclassified failure
  2   usage error (bad flags)
  65  data error (corrupt journal)
  75  transient backend failure; rerunning may succeed";

fn flag(args: &[String], name: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .map(Some)
            .ok_or_else(|| format!("{name} expects an integer")),
        None => Ok(None),
    }
}

fn text_flag(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{name} expects a value")),
        None => Ok(None),
    }
}

/// Every `--chaos-kill SEED:MEMBER` occurrence, parsed.
fn chaos_kills(args: &[String]) -> Result<Vec<(u64, u64)>, String> {
    let mut kills = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        if arg != "--chaos-kill" {
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or("--chaos-kill expects SEED:MEMBER".to_string())?;
        let (seed, member) = value
            .split_once(':')
            .ok_or(format!("--chaos-kill {value}: expected SEED:MEMBER"))?;
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("--chaos-kill {value}: SEED must be an integer"))?;
        let member: u64 = member
            .parse()
            .map_err(|_| format!("--chaos-kill {value}: MEMBER must be an integer"))?;
        kills.push((seed, member));
    }
    Ok(kills)
}

fn config_from_args(args: &[String]) -> Result<(u64, ServeConfig), String> {
    let device_seed = flag(args, "--device-seed")?.unwrap_or(42);
    let mut config = ServeConfig::default();
    if let Some(threads) = validate::threads(flag(args, "--threads")?).map_err(|e| e.to_string())? {
        config.threads = threads;
    }
    if let Some(queue) = flag(args, "--queue")? {
        if queue == 0 {
            return Err("--queue must be at least 1".into());
        }
        config.queue_capacity = queue as usize;
    }
    if let Some(cache) = flag(args, "--cache")? {
        if cache == 0 {
            return Err("--cache must be at least 1".into());
        }
        config.cache_capacity = cache as usize;
    }
    if let Some(batch) = flag(args, "--batch")? {
        if batch == 0 {
            return Err("--batch must be at least 1".into());
        }
        config.max_batch_jobs = batch as usize;
    }
    Ok((device_seed, config))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (device_seed, mut config) = match config_from_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(exitcode::USAGE);
        }
    };
    if args.iter().any(|a| a == "--controller") {
        config.controller = Some(ControllerConfig::default());
    }
    let (journal_path, controller_log, kills) = match (|| {
        let journal = text_flag(&args, "--journal")?;
        let log = text_flag(&args, "--controller-log")?;
        if log.is_some() && config.controller.is_none() {
            return Err("--controller-log requires --controller".into());
        }
        let kills = chaos_kills(&args)?;
        Ok::<_, String>((journal, log, kills))
    })() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(exitcode::USAGE);
        }
    };
    let metrics_port = match flag(&args, "--metrics-port") {
        Ok(port) => port,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(exitcode::USAGE);
        }
    };
    // Keep the server handle alive for the process's whole life; dropping it
    // would only detach the listener thread, but binding up front surfaces
    // port conflicts before any job is accepted.
    let _metrics_server = match metrics_port {
        Some(port) if port > u64::from(u16::MAX) => {
            eprintln!("error: --metrics-port must fit in 16 bits\n{USAGE}");
            return ExitCode::from(exitcode::USAGE);
        }
        Some(port) => {
            edm_telemetry::set_enabled(true);
            match edm_telemetry::http::serve(port as u16) {
                Ok(server) => {
                    eprintln!("metrics listening on http://{}/metrics", server.addr());
                    Some(server)
                }
                Err(e) => {
                    eprintln!("error: cannot bind metrics port {port}: {e}");
                    return ExitCode::from(exitcode::FAILURE);
                }
            }
        }
        None => None,
    };
    match text_flag(&args, "--trace-out") {
        Ok(Some(path)) => {
            edm_telemetry::set_enabled(true);
            if let Err(e) = edm_telemetry::trace::set_trace_file(
                &path,
                edm_telemetry::trace::DEFAULT_TRACE_FILE_MAX_BYTES,
            ) {
                eprintln!("error: cannot open trace file {path}: {e}");
                return ExitCode::from(exitcode::FAILURE);
            }
            eprintln!("traces appending to {path}");
        }
        Ok(None) => {}
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(exitcode::USAGE);
        }
    }

    let device = DeviceModel::synthesize(presets::melbourne14(), device_seed);
    let device_name = format!("melbourne14#{device_seed}");
    let backend = NoisySimulator::from_device(&device);
    // The chaos wrapper changes the service's backend type, so the serve
    // loop is generic and the choice happens once, here.
    if kills.is_empty() {
        let service = JobService::new(
            device.topology().clone(),
            device.calibration(),
            backend,
            config,
        );
        run_service(service, &device_name, journal_path, controller_log)
    } else {
        let mut chaos = ChaosBackend::new(backend, 0, 0);
        for (seed, member) in kills {
            chaos.kill_seed(qsim::rngstream::fork(seed, member));
        }
        let service = JobService::new(
            device.topology().clone(),
            device.calibration(),
            chaos,
            config,
        );
        run_service(service, &device_name, journal_path, controller_log)
    }
}

/// The serve loop, generic over the backend so the chaos-wrapped and plain
/// services share it: attach the journal, open the controller decision
/// log, then speak JSON lines until shutdown or EOF.
fn run_service<B: edm_core::Backend>(
    mut service: JobService<B>,
    device_name: &str,
    journal_path: Option<String>,
    controller_log: Option<String>,
) -> ExitCode {
    if let Some(path) = journal_path {
        match service.attach_journal(&path) {
            Ok(recovered) if recovered > 0 => {
                eprintln!("recovered {recovered} unfinished job(s) from {path}");
            }
            Ok(_) => {}
            Err(e @ JournalError::Corrupt { .. }) => {
                eprintln!("error: {e}");
                return ExitCode::from(exitcode::DATA);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(exitcode::FAILURE);
            }
        }
    }
    let mut decision_log = match controller_log {
        Some(path) => match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(file) => Some(file),
            Err(e) => {
                eprintln!("error: cannot open controller log {path}: {e}");
                return ExitCode::from(exitcode::FAILURE);
            }
        },
        None => None,
    };

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut out = stdout.lock();
    // The framer reassembles requests split across reads (a pipe write or
    // TCP segment boundary mid-line must not error) and turns malformed
    // frames into reject-with-reason responses instead of hangups.
    let mut framer = LineFramer::default();
    let mut buf = [0u8; 8192];
    loop {
        let n = match input.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        framer.feed(&buf[..n]);
        while let Some(frame) = framer.next_frame() {
            let line = match frame {
                Frame::Line(line) => line,
                Frame::Oversized { length } => {
                    emit(
                        &mut out,
                        &Response::Error {
                            reason: format!("frame too long ({length} bytes, no newline)"),
                        },
                    );
                    continue;
                }
                Frame::InvalidUtf8 => {
                    emit(
                        &mut out,
                        &Response::Error {
                            reason: "request line is not valid UTF-8".into(),
                        },
                    );
                    continue;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let request = match serde_json::from_str::<Request>(&line) {
                Ok(request) => request,
                Err(e) => {
                    emit(
                        &mut out,
                        &Response::Error {
                            reason: format!("bad request line: {e}"),
                        },
                    );
                    continue;
                }
            };
            let shutdown = matches!(request, Request::Shutdown);
            let response = handle(&mut service, device_name, request);
            drain_decisions(&mut service, &mut decision_log);
            emit(&mut out, &response);
            if shutdown {
                return ExitCode::SUCCESS;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Appends any controller decisions made since the last request to the
/// decision log, one JSON object per line, flushed so the log survives a
/// kill. Without a log the events are dropped (the counters in `stats`
/// still track them).
fn drain_decisions<B: edm_core::Backend>(
    service: &mut JobService<B>,
    log: &mut Option<std::fs::File>,
) {
    let decisions = service.take_controller_events();
    if decisions.is_empty() {
        return;
    }
    if let Some(file) = log.as_mut() {
        for decision in &decisions {
            let line =
                serde_json::to_string(decision).expect("controller decisions always serialize");
            if file
                .write_all(line.as_bytes())
                .and_then(|()| file.write_all(b"\n"))
                .is_err()
            {
                *log = None;
                return;
            }
        }
        if file.flush().is_err() {
            *log = None;
        }
    }
}

fn emit(out: &mut impl Write, response: &Response) {
    let line = serde_json::to_string(response).expect("responses always serialize");
    writeln!(out, "{line}").expect("stdout closed");
    out.flush().expect("stdout closed");
}

fn handle<B: edm_core::Backend>(
    service: &mut JobService<B>,
    device_name: &str,
    request: Request,
) -> Response {
    match request {
        Request::Submit {
            qasm,
            shots,
            seed,
            priority,
            trace_id,
            parent_span,
        } => {
            let circuit = match qasm::parse(&qasm) {
                Ok(circuit) => circuit,
                Err(e) => {
                    return Response::Rejected {
                        reason: format!("bad qasm: {e}"),
                    }
                }
            };
            match service.submit_with_context(
                JobRequest {
                    circuit,
                    shots,
                    seed,
                    priority,
                },
                edm_telemetry::trace::TraceContext {
                    trace_id,
                    parent_span,
                },
            ) {
                Ok(id) => Response::Accepted {
                    id,
                    trace_id: service.trace_id(id).unwrap_or(0),
                },
                Err(e) => Response::Rejected {
                    reason: e.to_string(),
                },
            }
        }
        Request::Poll { id } => {
            // Polling drives the service: anything queued runs first, so a
            // single-client session never needs a separate Flush.
            service.process_all();
            match service.poll(id) {
                None => Response::Unknown { id },
                Some(JobState::Queued) => Response::Queued { id },
                Some(JobState::Failed(reason)) => Response::Failed {
                    id,
                    reason: reason.clone(),
                },
                Some(JobState::Done(done)) => Response::Finished {
                    id,
                    summary: JobSummary::from_result(
                        id,
                        service.trace_id(id).unwrap_or(0),
                        &done.result,
                        done.latency_ms,
                    ),
                },
            }
        }
        Request::Flush => Response::Processed {
            jobs: service.process_all() as u64,
        },
        Request::Stats => Response::Stats {
            stats: Box::new(service.stats()),
        },
        Request::BumpCalibration => Response::Recalibrated {
            generation: service.bump_calibration_generation(),
        },
        Request::Metrics => Response::Metrics {
            families: edm_telemetry::metrics::registry()
                .snapshot()
                .iter()
                .map(MetricFamily::from_snapshot)
                .collect(),
        },
        // A single-device server is a one-member fleet.
        Request::FleetStats => Response::FleetStats {
            devices: vec![DeviceStatus {
                device: 0,
                name: device_name.to_string(),
                queue_depth: service.queue_depth() as u64,
                breaker: service.breaker_state(),
                quarantined: service.is_quarantined(),
                quality: service.quality(),
                stats: service.stats(),
            }],
        },
        Request::Trace { id } => match service.trace_id(id) {
            Some(trace_id) => Response::Trace {
                id,
                trace_id,
                spans: edm_telemetry::trace::recorder()
                    .trace(trace_id)
                    .iter()
                    .map(edm_serve::protocol::SpanInfo::from)
                    .collect(),
            },
            None => Response::Unknown { id },
        },
        Request::Shutdown => Response::Bye,
    }
}
