//! `edm-serve` — a JSON-lines job service over the EDM pipeline.
//!
//! ```text
//! edm-serve [--device-seed N] [--threads N] [--queue N] [--cache N] [--batch N]
//! ```
//!
//! Reads one [`Request`](edm_serve::protocol::Request) JSON object per
//! stdin line, writes one [`Response`](edm_serve::protocol::Response) JSON
//! object per stdout line, and exits on `"Shutdown"` or EOF. The device is
//! the simulated IBMQ-14 (`melbourne14`) synthesized from `--device-seed`,
//! matching `edm-cli run` — so a served result is bit-identical to the
//! direct run with the same circuit, shots, and seed.

use edm_serve::exitcode;
use edm_serve::framing::{Frame, LineFramer};
use edm_serve::journal::JournalError;
use edm_serve::protocol::{DeviceStatus, JobSummary, MetricFamily, Request, Response};
use edm_serve::queue::JobRequest;
use edm_serve::service::{JobService, JobState, ServeConfig};
use edm_serve::validate;
use qcir::qasm;
use qdevice::{presets, DeviceModel};
use qsim::NoisySimulator;
use std::io::{Read, Write};
use std::process::ExitCode;

const USAGE: &str = "usage:
  edm-serve [--device-seed N] [--threads N] [--queue N] [--cache N] [--batch N]
            [--journal PATH] [--metrics-port N]

Speaks JSON lines on stdin/stdout. Requests:
  {\"Submit\":{\"qasm\":\"...\",\"shots\":N,\"seed\":N,\"priority\":\"Normal\"}}
  {\"Poll\":{\"id\":N}}   \"Flush\"   \"Stats\"   \"Metrics\"   \"FleetStats\"
  \"BumpCalibration\"   \"Shutdown\"

--journal PATH appends a JSON-lines write-ahead journal of accepted jobs;
restarting with the same path replays unfinished jobs bit-identically.

--metrics-port N serves Prometheus text on http://127.0.0.1:N/metrics
(plus /metrics.json, /spans, and /healthz) and enables telemetry; port 0
picks an ephemeral port, printed to stderr as `metrics listening on ...`.

exit codes:
  0   success
  1   unclassified failure
  2   usage error (bad flags)
  65  data error (corrupt journal)
  75  transient backend failure; rerunning may succeed";

fn flag(args: &[String], name: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .map(Some)
            .ok_or_else(|| format!("{name} expects an integer")),
        None => Ok(None),
    }
}

fn config_from_args(args: &[String]) -> Result<(u64, ServeConfig), String> {
    let device_seed = flag(args, "--device-seed")?.unwrap_or(42);
    let mut config = ServeConfig::default();
    if let Some(threads) = validate::threads(flag(args, "--threads")?).map_err(|e| e.to_string())? {
        config.threads = threads;
    }
    if let Some(queue) = flag(args, "--queue")? {
        if queue == 0 {
            return Err("--queue must be at least 1".into());
        }
        config.queue_capacity = queue as usize;
    }
    if let Some(cache) = flag(args, "--cache")? {
        if cache == 0 {
            return Err("--cache must be at least 1".into());
        }
        config.cache_capacity = cache as usize;
    }
    if let Some(batch) = flag(args, "--batch")? {
        if batch == 0 {
            return Err("--batch must be at least 1".into());
        }
        config.max_batch_jobs = batch as usize;
    }
    Ok((device_seed, config))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (device_seed, config) = match config_from_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(exitcode::USAGE);
        }
    };
    let journal_path = match args.iter().position(|a| a == "--journal") {
        Some(i) => match args.get(i + 1) {
            Some(path) => Some(path.clone()),
            None => {
                eprintln!("error: --journal expects a path\n{USAGE}");
                return ExitCode::from(exitcode::USAGE);
            }
        },
        None => None,
    };
    let metrics_port = match flag(&args, "--metrics-port") {
        Ok(port) => port,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(exitcode::USAGE);
        }
    };
    // Keep the server handle alive for the process's whole life; dropping it
    // would only detach the listener thread, but binding up front surfaces
    // port conflicts before any job is accepted.
    let _metrics_server = match metrics_port {
        Some(port) if port > u64::from(u16::MAX) => {
            eprintln!("error: --metrics-port must fit in 16 bits\n{USAGE}");
            return ExitCode::from(exitcode::USAGE);
        }
        Some(port) => {
            edm_telemetry::set_enabled(true);
            match edm_telemetry::http::serve(port as u16) {
                Ok(server) => {
                    eprintln!("metrics listening on http://{}/metrics", server.addr());
                    Some(server)
                }
                Err(e) => {
                    eprintln!("error: cannot bind metrics port {port}: {e}");
                    return ExitCode::from(exitcode::FAILURE);
                }
            }
        }
        None => None,
    };

    let device = DeviceModel::synthesize(presets::melbourne14(), device_seed);
    let backend = NoisySimulator::from_device(&device);
    let mut service = JobService::new(
        device.topology().clone(),
        device.calibration(),
        backend,
        config,
    );
    if let Some(path) = journal_path {
        match service.attach_journal(&path) {
            Ok(recovered) if recovered > 0 => {
                eprintln!("recovered {recovered} unfinished job(s) from {path}");
            }
            Ok(_) => {}
            Err(e @ JournalError::Corrupt { .. }) => {
                eprintln!("error: {e}");
                return ExitCode::from(exitcode::DATA);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(exitcode::FAILURE);
            }
        }
    }

    let device_name = format!("melbourne14#{device_seed}");
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut out = stdout.lock();
    // The framer reassembles requests split across reads (a pipe write or
    // TCP segment boundary mid-line must not error) and turns malformed
    // frames into reject-with-reason responses instead of hangups.
    let mut framer = LineFramer::default();
    let mut buf = [0u8; 8192];
    loop {
        let n = match input.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        framer.feed(&buf[..n]);
        while let Some(frame) = framer.next_frame() {
            let line = match frame {
                Frame::Line(line) => line,
                Frame::Oversized { length } => {
                    emit(
                        &mut out,
                        &Response::Error {
                            reason: format!("frame too long ({length} bytes, no newline)"),
                        },
                    );
                    continue;
                }
                Frame::InvalidUtf8 => {
                    emit(
                        &mut out,
                        &Response::Error {
                            reason: "request line is not valid UTF-8".into(),
                        },
                    );
                    continue;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let request = match serde_json::from_str::<Request>(&line) {
                Ok(request) => request,
                Err(e) => {
                    emit(
                        &mut out,
                        &Response::Error {
                            reason: format!("bad request line: {e}"),
                        },
                    );
                    continue;
                }
            };
            let shutdown = matches!(request, Request::Shutdown);
            let response = handle(&mut service, &device_name, request);
            emit(&mut out, &response);
            if shutdown {
                return ExitCode::SUCCESS;
            }
        }
    }
    ExitCode::SUCCESS
}

fn emit(out: &mut impl Write, response: &Response) {
    let line = serde_json::to_string(response).expect("responses always serialize");
    writeln!(out, "{line}").expect("stdout closed");
    out.flush().expect("stdout closed");
}

fn handle<B: edm_core::Backend>(
    service: &mut JobService<B>,
    device_name: &str,
    request: Request,
) -> Response {
    match request {
        Request::Submit {
            qasm,
            shots,
            seed,
            priority,
        } => {
            let circuit = match qasm::parse(&qasm) {
                Ok(circuit) => circuit,
                Err(e) => {
                    return Response::Rejected {
                        reason: format!("bad qasm: {e}"),
                    }
                }
            };
            match service.submit(JobRequest {
                circuit,
                shots,
                seed,
                priority,
            }) {
                Ok(id) => Response::Accepted {
                    id,
                    trace_id: service.trace_id(id).unwrap_or(0),
                },
                Err(e) => Response::Rejected {
                    reason: e.to_string(),
                },
            }
        }
        Request::Poll { id } => {
            // Polling drives the service: anything queued runs first, so a
            // single-client session never needs a separate Flush.
            service.process_all();
            match service.poll(id) {
                None => Response::Unknown { id },
                Some(JobState::Queued) => Response::Queued { id },
                Some(JobState::Failed(reason)) => Response::Failed {
                    id,
                    reason: reason.clone(),
                },
                Some(JobState::Done(done)) => Response::Finished {
                    id,
                    summary: JobSummary::from_result(
                        id,
                        service.trace_id(id).unwrap_or(0),
                        &done.result,
                        done.latency_ms,
                    ),
                },
            }
        }
        Request::Flush => Response::Processed {
            jobs: service.process_all() as u64,
        },
        Request::Stats => Response::Stats {
            stats: service.stats(),
        },
        Request::BumpCalibration => Response::Recalibrated {
            generation: service.bump_calibration_generation(),
        },
        Request::Metrics => Response::Metrics {
            families: edm_telemetry::metrics::registry()
                .snapshot()
                .iter()
                .map(MetricFamily::from_snapshot)
                .collect(),
        },
        // A single-device server is a one-member fleet.
        Request::FleetStats => Response::FleetStats {
            devices: vec![DeviceStatus {
                device: 0,
                name: device_name.to_string(),
                queue_depth: service.queue_depth() as u64,
                breaker: service.breaker_state(),
                quarantined: service.is_quarantined(),
                stats: service.stats(),
            }],
        },
        Request::Shutdown => Response::Bye,
    }
}
