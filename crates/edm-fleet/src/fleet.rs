//! The variability-aware fleet scheduler.
//!
//! Tannu & Qureshi's variability-aware policy, lifted from qubits to whole
//! devices: a [`Fleet`] owns N virtual devices — distinct topology presets
//! and calibration snapshots, each wrapping its own full
//! [`JobService`] stack, so the
//! compilation cache, circuit breaker, drift quarantine, journal, and
//! telemetry are per-device components — and routes every submission to
//! the device with the highest predicted ESP for that circuit.
//!
//! ## Scoring and failover order
//!
//! For each device the scheduler asks
//! [`predicted_esp`](edm_serve::service::JobService::predicted_esp) — the
//! best ensemble member's ESP under the device's current calibration and
//! quarantine, compiled through the per-device cache so scoring warms the
//! entry the accepted submission then hits. Devices that cannot map the
//! circuit at all are not candidates. The rest are ordered:
//!
//! 1. healthy before unhealthy — healthy means breaker
//!    [`Closed`](edm_serve::dispatch::BreakerState::Closed), nothing
//!    quarantined, and queue depth below the routing cap,
//! 2. predicted ESP, descending,
//! 3. device index, ascending (the deterministic tie-break).
//!
//! Submission walks that order and takes the first device whose admission
//! queue accepts. Unhealthy devices are kept at the tail rather than
//! dropped: while any healthy candidate exists they never receive work,
//! but when the whole fleet is sick the best unhealthy device still gets
//! the job — which is also what lets an open breaker see its half-open
//! probe and recover.
//!
//! ## Determinism
//!
//! Scores depend only on (circuit, calibration generation, quarantine) and
//! health only on per-device service state, so two fleets in identical
//! states route identically; and because routing picks a (device, seed)
//! but never alters the request, a fleet-routed result is bit-identical to
//! a direct single-device run on the chosen device — the DESIGN.md §7
//! contract extended to routing.

use crate::backend::DeviceBackend;
use edm_core::{Backend, QualitySnapshot};
use edm_serve::dispatch::BreakerState;
use edm_serve::journal::JournalError;
use edm_serve::protocol::DeviceStatus;
use edm_serve::queue::{AdmitError, JobRequest};
use edm_serve::service::{JobService, JobState, ServeConfig};
use edm_serve::stats::ServiceStats;
use edm_telemetry::trace::TraceContext;
use qcir::Circuit;
use qdevice::DeviceModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How the scheduler scores a device for a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Compile-time score only: the predicted ESP of the best ensemble
    /// member under the device's current calibration and quarantine.
    #[default]
    Esp,
    /// ESP corrected by the live answer-quality plane: each device's score
    /// is its predicted ESP multiplied by the quality factor its online
    /// IST estimator has earned (EWMA of observed top-outcome share over
    /// EWMA of promised ESP, clamped). Until an estimator's warmup
    /// threshold is crossed its factor is exactly `1.0`, so `LiveIst`
    /// routes identically to [`Esp`](RoutingPolicy::Esp) on a cold fleet —
    /// the deterministic fallback the DESIGN.md §7 contract needs.
    LiveIst,
}

impl std::str::FromStr for RoutingPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "esp" => Ok(RoutingPolicy::Esp),
            "live-ist" => Ok(RoutingPolicy::LiveIst),
            other => Err(format!(
                "unknown routing policy {other:?} (expected esp or live-ist)"
            )),
        }
    }
}

/// Fleet-level knobs on top of the per-device [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-device service configuration (every device gets a copy).
    pub serve: ServeConfig,
    /// Routing-level queue-depth cap: a device at or above this depth is
    /// treated as unhealthy so one hot device cannot starve the fleet.
    /// Must be positive and no larger than the admission-queue capacity.
    pub depth_cap: usize,
    /// How candidate devices are scored (compile-time ESP, or ESP
    /// corrected by the live answer-quality plane).
    pub routing: RoutingPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        let serve = ServeConfig::default();
        FleetConfig {
            depth_cap: serve.queue_capacity / 4,
            serve,
            routing: RoutingPolicy::default(),
        }
    }
}

/// Why a submission could not be routed.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// The fleet has no devices.
    Empty,
    /// No device can map the circuit at all.
    Unmappable {
        /// The last device's compilation error.
        reason: String,
    },
    /// Every candidate's admission queue refused the job.
    AllRejected {
        /// The best-ranked candidate's admission error.
        reason: String,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Empty => write!(f, "fleet has no devices"),
            RouteError::Unmappable { reason } => {
                write!(f, "no device can run this circuit: {reason}")
            }
            RouteError::AllRejected { reason } => {
                write!(f, "every device refused the job: {reason}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// One device's standing for a specific circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Device index within the fleet.
    pub device: usize,
    /// Routing score: the best ensemble member's predicted ESP, multiplied
    /// by the device's live quality factor under
    /// [`RoutingPolicy::LiveIst`].
    pub score: f64,
    /// Breaker closed, nothing quarantined, depth under the cap.
    pub healthy: bool,
}

/// The receipt for an accepted fleet submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// Fleet-wide job id (what clients poll).
    pub id: u64,
    /// The device the job was routed to.
    pub device: usize,
    /// The job's id inside that device's service.
    pub local_id: u64,
    /// The correlation id the device's service stamped on the job.
    pub trace_id: u64,
}

struct DeviceSlot<B> {
    name: String,
    service: JobService<B>,
    routed: &'static edm_telemetry::metrics::Counter,
    completed: &'static edm_telemetry::metrics::Counter,
    depth: &'static edm_telemetry::metrics::Gauge,
    breaker: &'static edm_telemetry::metrics::Gauge,
    quarantined: &'static edm_telemetry::metrics::Gauge,
    live_ist: &'static edm_telemetry::metrics::Gauge,
    esp_gap: &'static edm_telemetry::metrics::Gauge,
}

impl<B: Backend> DeviceSlot<B> {
    /// Pushes the routing-relevant gauges after any state change.
    fn refresh_gauges(&self) {
        self.depth.set(self.service.queue_depth() as i64);
        self.breaker.set(match self.service.breaker_state() {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        });
        self.quarantined
            .set(i64::from(self.service.is_quarantined()));
        // Quality gauges follow the `_micro` convention (×10⁶). A device
        // with no completed jobs yet reports 0 — indistinguishable from a
        // measured 0, so dashboards should gate on observations > 0 via
        // the fleet-stats wire if that matters.
        let quality = self.service.quality();
        self.live_ist
            .set(edm_core::quality::micro(quality.live_ist.unwrap_or(0.0)));
        self.esp_gap
            .set(edm_core::quality::micro(quality.esp_gap.unwrap_or(0.0)));
    }
}

/// One line of the fleet-index journal: which device a fleet-wide job id
/// was routed to. Device journals are the source of truth for the jobs
/// themselves; this file only restores the id → placement mapping so
/// clients can keep polling across a restart.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct IndexEntry {
    id: u64,
    device: usize,
    local_id: u64,
}

/// A fleet of virtual devices behind one ESP-scored router.
///
/// Generic over the per-device [`Backend`] so tests can wrap
/// [`DeviceBackend`] in the fault-injecting doubles from
/// [`edm_serve::dispatch`]. Every method takes `&self`: devices sit behind
/// per-device mutexes, so connection shards and executor threads share a
/// fleet through an [`Arc`].
pub struct Fleet<B> {
    slots: Vec<Mutex<DeviceSlot<B>>>,
    /// Fleet job id → (device index, device-local job id).
    index: Mutex<BTreeMap<u64, (usize, u64)>>,
    /// Append handle for the fleet-index journal, when journaling is on.
    index_journal: Mutex<Option<std::fs::File>>,
    next_id: AtomicU64,
    config: FleetConfig,
}

/// Interned per-device label values (`d0`, `d1`, …). Metric registration
/// borrows label values only for the call, but building the string each
/// time would churn; one leak per device per process is the cheap choice.
fn device_label(idx: usize) -> &'static str {
    Box::leak(format!("d{idx}").into_boxed_str())
}

impl<B: Backend> Fleet<B> {
    /// An empty fleet; add devices with [`Fleet::add_device`].
    ///
    /// # Panics
    ///
    /// Panics if `depth_cap` is zero or exceeds the admission-queue
    /// capacity (such a cap could never mark any device healthy, or never
    /// fire).
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.depth_cap > 0, "depth cap must be positive");
        assert!(
            config.depth_cap <= config.serve.queue_capacity,
            "depth cap beyond queue capacity can never fire"
        );
        Fleet {
            slots: Vec::new(),
            index: Mutex::new(BTreeMap::new()),
            index_journal: Mutex::new(None),
            next_id: AtomicU64::new(1),
            config,
        }
    }

    /// Adds a virtual device wrapping its own full `JobService` stack and
    /// returns its index. `name` should describe the preset and seed
    /// (e.g. `tokyo20#7`).
    pub fn add_device(
        &mut self,
        name: impl Into<String>,
        device: &DeviceModel,
        backend: B,
    ) -> usize {
        let idx = self.slots.len();
        let service = JobService::new(
            device.topology().clone(),
            device.calibration(),
            backend,
            self.config.serve.clone(),
        );
        let label = &[("device", device_label(idx))][..];
        let registry = edm_telemetry::metrics::registry();
        let slot = DeviceSlot {
            name: name.into(),
            service,
            routed: registry.counter_with(
                "edm_fleet_jobs_routed_total",
                "Jobs the scheduler routed to this device",
                label,
            ),
            completed: registry.counter_with(
                "edm_fleet_jobs_completed_total",
                "Jobs this device finished with a result",
                label,
            ),
            depth: registry.gauge_with(
                "edm_fleet_queue_depth",
                "Jobs waiting in this device's admission queue",
                label,
            ),
            breaker: registry.gauge_with(
                "edm_fleet_breaker_state",
                "This device's breaker state (0 closed, 1 half-open, 2 open)",
                label,
            ),
            quarantined: registry.gauge_with(
                "edm_fleet_quarantined",
                "Whether the drift watchdog has quarantined part of this device (0/1)",
                label,
            ),
            live_ist: registry.gauge_with(
                "edm_quality_live_ist",
                "EWMA of this device's observed top-outcome share (micro-units)",
                label,
            ),
            esp_gap: registry.gauge_with(
                "edm_quality_esp_gap",
                "Predicted ESP minus observed share, EWMA (micro-units; positive = under-delivery)",
                label,
            ),
        };
        self.slots.push(Mutex::new(slot));
        idx
    }

    /// Number of devices in the fleet.
    pub fn num_devices(&self) -> usize {
        self.slots.len()
    }

    /// Scores `circuit` on every device and returns the candidates in
    /// failover order: healthy first, then score descending, then device
    /// index ascending. Devices that cannot map the circuit are absent.
    ///
    /// Under [`RoutingPolicy::Esp`] the score is the predicted ESP; under
    /// [`RoutingPolicy::LiveIst`] it is the ESP multiplied by the device's
    /// current quality factor (exactly `1.0` until that device's estimator
    /// warms up, so a cold fleet scores identically under both policies).
    pub fn candidates(&self, circuit: &Circuit) -> Vec<Candidate> {
        let mut out = Vec::with_capacity(self.slots.len());
        for (idx, slot) in self.slots.iter().enumerate() {
            let mut slot = slot.lock().expect("device lock poisoned");
            let esp = match slot.service.predicted_esp(circuit) {
                Ok(score) => score,
                Err(_) => continue,
            };
            let score = match self.config.routing {
                RoutingPolicy::Esp => esp,
                RoutingPolicy::LiveIst => esp * slot.service.quality().quality_factor,
            };
            let healthy = slot.service.breaker_state() == BreakerState::Closed
                && !slot.service.is_quarantined()
                && slot.service.queue_depth() < self.config.depth_cap;
            out.push(Candidate {
                device: idx,
                score,
                healthy,
            });
        }
        // ESP lives in (0, 1] — never NaN — but stay total anyway.
        out.sort_by(|a, b| {
            b.healthy
                .cmp(&a.healthy)
                .then(
                    b.score
                        .partial_cmp(&a.score)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(a.device.cmp(&b.device))
        });
        out
    }

    /// The device a submission of `circuit` would go to right now.
    pub fn route(&self, circuit: &Circuit) -> Option<Candidate> {
        self.candidates(circuit).into_iter().next()
    }

    /// Routes and submits a job, returning the fleet-wide ticket.
    ///
    /// Walks the candidate order and takes the first device whose
    /// admission queue accepts — an unhealthy or full best device fails
    /// over to the next-best instead of bouncing the client.
    ///
    /// # Errors
    ///
    /// [`RouteError`] when the fleet is empty, no device can map the
    /// circuit, or every candidate's queue refused.
    pub fn submit(&self, request: JobRequest) -> Result<Ticket, RouteError> {
        self.submit_with_context(request, TraceContext::default())
    }

    /// [`Fleet::submit`] with an explicit client trace context: the routed
    /// device's service links its spans (and the job's pool slices) under
    /// the client's trace instead of minting a fresh one. A zero context
    /// behaves exactly like [`Fleet::submit`].
    ///
    /// # Errors
    ///
    /// Same as [`Fleet::submit`].
    pub fn submit_with_context(
        &self,
        request: JobRequest,
        ctx: TraceContext,
    ) -> Result<Ticket, RouteError> {
        if self.slots.is_empty() {
            return Err(RouteError::Empty);
        }
        let candidates = self.candidates(&request.circuit);
        if candidates.is_empty() {
            // Re-ask one device for the human-readable reason.
            let reason = self.slots[0]
                .lock()
                .expect("device lock poisoned")
                .service
                .predicted_esp(&request.circuit)
                .err()
                .unwrap_or_else(|| "unmappable".into());
            return Err(RouteError::Unmappable { reason });
        }
        let mut first_rejection: Option<AdmitError> = None;
        for candidate in candidates {
            let mut slot = self.slots[candidate.device]
                .lock()
                .expect("device lock poisoned");
            match slot.service.submit_with_context(request.clone(), ctx) {
                Ok(local_id) => {
                    let trace_id = slot.service.trace_id(local_id).unwrap_or(0);
                    slot.routed.inc();
                    slot.refresh_gauges();
                    drop(slot);
                    let id = self.next_id.fetch_add(1, Ordering::SeqCst);
                    self.index
                        .lock()
                        .expect("index lock poisoned")
                        .insert(id, (candidate.device, local_id));
                    // After the device's own write-ahead entry, before the
                    // client sees the ticket: a crash in between replays the
                    // job on the device without an index line — the job
                    // survives, only the (never-acknowledged) id is lost.
                    self.journal_index(IndexEntry {
                        id,
                        device: candidate.device,
                        local_id,
                    });
                    return Ok(Ticket {
                        id,
                        device: candidate.device,
                        local_id,
                        trace_id,
                    });
                }
                Err(e) => {
                    first_rejection.get_or_insert(e);
                }
            }
        }
        Err(RouteError::AllRejected {
            reason: first_rejection
                .expect("candidates existed, so at least one rejection")
                .to_string(),
        })
    }

    /// A fleet job's current state (cloned), or `None` for an unknown id.
    pub fn poll(&self, id: u64) -> Option<JobState> {
        let (device, local_id) = *self.index.lock().expect("index lock poisoned").get(&id)?;
        let slot = self.slots[device].lock().expect("device lock poisoned");
        slot.service.poll(local_id).cloned()
    }

    /// The correlation id the routed device's service stamped on a fleet
    /// job, or `None` for an unknown id.
    pub fn trace_id(&self, id: u64) -> Option<u64> {
        let (device, local_id) = *self.index.lock().expect("index lock poisoned").get(&id)?;
        let slot = self.slots[device].lock().expect("device lock poisoned");
        slot.service.trace_id(local_id)
    }

    /// The (device index, device-local id) a fleet job was routed to.
    pub fn placement(&self, id: u64) -> Option<(usize, u64)> {
        self.index
            .lock()
            .expect("index lock poisoned")
            .get(&id)
            .copied()
    }

    /// Runs one `process_pending` pass on one device. Returns how many of
    /// its requests finished.
    pub fn process_device(&self, device: usize) -> usize {
        let mut slot = self.slots[device].lock().expect("device lock poisoned");
        let before = slot.service.stats().completed;
        let n = slot.service.process_pending();
        let delta = slot.service.stats().completed.saturating_sub(before);
        if delta > 0 {
            slot.completed.add(delta);
        }
        slot.refresh_gauges();
        n
    }

    /// Drains every device completely. Returns how many requests finished
    /// fleet-wide.
    pub fn process_all(&self) -> usize {
        let mut total = 0;
        loop {
            let mut round = 0;
            for device in 0..self.slots.len() {
                round += self.process_device(device);
            }
            if round == 0 {
                return total;
            }
            total += round;
        }
    }

    /// Per-device status in device-index order, as the wire protocol
    /// reports it.
    pub fn device_status(&self) -> Vec<DeviceStatus> {
        self.slots
            .iter()
            .enumerate()
            .map(|(idx, slot)| {
                let slot = slot.lock().expect("device lock poisoned");
                DeviceStatus {
                    device: idx as u64,
                    name: slot.name.clone(),
                    queue_depth: slot.service.queue_depth() as u64,
                    breaker: slot.service.breaker_state(),
                    quarantined: slot.service.is_quarantined(),
                    quality: slot.service.quality(),
                    stats: slot.service.stats(),
                }
            })
            .collect()
    }

    /// Fleet-wide counter snapshot: sums across devices, with the worst
    /// breaker state and the maximum latency percentiles (a conservative
    /// merge — exact fleet-wide percentiles would need the raw windows).
    pub fn stats(&self) -> ServiceStats {
        let per_device: Vec<ServiceStats> = self
            .slots
            .iter()
            .map(|slot| slot.lock().expect("device lock poisoned").service.stats())
            .collect();
        aggregate_stats(&per_device)
    }

    /// Bumps every device's calibration generation (a fleet-wide
    /// recalibration drill). Returns the maximum generation now current.
    pub fn bump_calibration_generation(&self) -> u64 {
        self.slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("device lock poisoned")
                    .service
                    .bump_calibration_generation()
            })
            .max()
            .unwrap_or(0)
    }

    /// Installs a fresh calibration on one device (the fleet analogue of
    /// [`JobService::update_calibration`]).
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range or the calibration does not
    /// cover the device's topology.
    pub fn update_calibration(&self, device: usize, calibration: qdevice::Calibration) {
        let mut slot = self.slots[device].lock().expect("device lock poisoned");
        slot.service.update_calibration(calibration);
        // The service's drift watchdog just re-observed the calibration, so
        // the quarantine gauge — and through `candidates()`'s re-scoring,
        // the device's routing rank — reflect the new error rates at once.
        slot.refresh_gauges();
    }

    /// One device's live answer-quality snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn device_quality(&self, device: usize) -> QualitySnapshot {
        self.slots[device]
            .lock()
            .expect("device lock poisoned")
            .service
            .quality()
    }

    /// Test/tooling hook: feeds a synthetic observation into one device's
    /// quality estimator and refreshes its gauges, exactly as a completed
    /// job would. Deterministic drift injection for routing tests.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    #[doc(hidden)]
    pub fn inject_quality_observation(
        &self,
        device: usize,
        predicted_esp: f64,
        observed_top_share: f64,
    ) {
        let mut slot = self.slots[device].lock().expect("device lock poisoned");
        slot.service
            .inject_quality_observation(predicted_esp, observed_top_share);
        slot.refresh_gauges();
    }

    /// Attaches crash-safe journals under `dir`: one per-device write-ahead
    /// journal (`device-{i}.jsonl`, via [`JobService::attach_journal`]) plus
    /// a fleet-index journal (`fleet-index.jsonl`) that restores the fleet
    /// job id → placement mapping. Jobs a previous process accepted but
    /// never finished are re-enqueued on their original devices with their
    /// original seeds, and previously issued fleet ids keep resolving.
    /// Returns how many jobs were recovered fleet-wide.
    ///
    /// Call before serving traffic — recovery assumes no concurrent
    /// submissions.
    ///
    /// # Errors
    ///
    /// [`JournalError`] when a journal cannot be opened or a non-final line
    /// of one is corrupt. A truncated final line (the torn write of the
    /// crash itself) is dropped, not an error.
    pub fn attach_journals(&self, dir: impl AsRef<Path>) -> Result<usize, JournalError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut recovered = 0;
        for (idx, slot) in self.slots.iter().enumerate() {
            let mut slot = slot.lock().expect("device lock poisoned");
            recovered += slot
                .service
                .attach_journal(dir.join(format!("device-{idx}.jsonl")))?;
            slot.refresh_gauges();
        }
        let path = dir.join("fleet-index.jsonl");
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e.into()),
        };
        let mut index = self.index.lock().expect("index lock poisoned");
        let lines: Vec<&str> = text.split('\n').collect();
        let last = lines.len().saturating_sub(1);
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<IndexEntry>(line) {
                Ok(entry) => {
                    // An entry pointing past the current fleet (shrunk
                    // config) is unroutable; its id is still reserved so
                    // fresh tickets never collide with old ones.
                    if entry.device < self.slots.len() {
                        index.insert(entry.id, (entry.device, entry.local_id));
                    }
                    self.next_id.fetch_max(entry.id + 1, Ordering::SeqCst);
                }
                // Same torn-final-line tolerance as the device journals.
                Err(_) if i == last => break,
                Err(e) => {
                    return Err(JournalError::Corrupt {
                        line: i + 1,
                        reason: e.to_string(),
                    })
                }
            }
        }
        drop(index);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        *self
            .index_journal
            .lock()
            .expect("index journal lock poisoned") = Some(file);
        Ok(recovered)
    }

    /// Appends one placement record when the index journal is attached.
    ///
    /// Best-effort by design: the device journal already holds the job
    /// itself, so losing an index line only degrades that id's polls to
    /// `Unknown` after a restart — never loses the job. A failing disk
    /// would fail every append, so the handle is dropped on first error.
    fn journal_index(&self, entry: IndexEntry) {
        let mut guard = self
            .index_journal
            .lock()
            .expect("index journal lock poisoned");
        if let Some(file) = guard.as_mut() {
            let line = serde_json::to_string(&entry).expect("index entries always serialize");
            let ok = file
                .write_all(line.as_bytes())
                .and_then(|()| file.write_all(b"\n"))
                .and_then(|()| file.flush())
                .is_ok();
            if !ok {
                *guard = None;
            }
        }
    }
}

impl Fleet<DeviceBackend> {
    /// Builds a fleet over synthesized devices: one virtual device per
    /// `(topology, name)` pair, each synthesized from `device_seed + index`
    /// so calibrations differ across the fleet.
    pub fn synthesize(
        presets: &[(qdevice::Topology, &str)],
        device_seed: u64,
        config: FleetConfig,
    ) -> Self {
        let mut fleet = Fleet::new(config);
        for (idx, (topology, name)) in presets.iter().enumerate() {
            let seed = device_seed + idx as u64;
            let device = Arc::new(DeviceModel::synthesize(topology.clone(), seed));
            let backend = DeviceBackend::new(Arc::clone(&device));
            fleet.add_device(format!("{name}#{seed}"), &device, backend);
        }
        fleet
    }
}

/// Merges per-device snapshots into one fleet-wide snapshot: counters sum;
/// the breaker reports the worst state (`Open` > `HalfOpen` > `Closed`)
/// with summed trip counters; latency percentiles take the per-device
/// maximum (conservative — merging percentiles exactly would need the raw
/// samples).
pub fn aggregate_stats(per_device: &[ServiceStats]) -> ServiceStats {
    let mut total = ServiceStats {
        submitted: 0,
        completed: 0,
        failed: 0,
        rejected: 0,
        batches: 0,
        compilations: 0,
        queue_depth: 0,
        cache: edm_serve::cache::CacheStats::default(),
        retries: 0,
        retry_exhausted: 0,
        timeouts: 0,
        breaker: edm_serve::dispatch::BreakerStats {
            state: BreakerState::Closed,
            trips: 0,
            fast_failures: 0,
            consecutive_failures: 0,
        },
        drift_events: 0,
        quarantined_qubits: 0,
        quarantined_links: 0,
        degraded: 0,
        recovered: 0,
        journal_appends: 0,
        controller_swaps: 0,
        controller_reweights: 0,
        controller_recompiles: 0,
        // Per-device EWMAs do not merge meaningfully; the fleet-wide
        // snapshot stays empty and `device_status` carries the real ones.
        quality: QualitySnapshot::default(),
        latency_p50_ms: 0,
        latency_p99_ms: 0,
    };
    let severity = |state: BreakerState| match state {
        BreakerState::Closed => 0,
        BreakerState::HalfOpen => 1,
        BreakerState::Open => 2,
    };
    for s in per_device {
        total.submitted += s.submitted;
        total.completed += s.completed;
        total.failed += s.failed;
        total.rejected += s.rejected;
        total.batches += s.batches;
        total.compilations += s.compilations;
        total.queue_depth += s.queue_depth;
        total.cache.hits += s.cache.hits;
        total.cache.misses += s.cache.misses;
        total.cache.evictions += s.cache.evictions;
        total.cache.invalidated += s.cache.invalidated;
        total.cache.entries += s.cache.entries;
        total.cache.capacity += s.cache.capacity;
        total.retries += s.retries;
        total.retry_exhausted += s.retry_exhausted;
        total.timeouts += s.timeouts;
        if severity(s.breaker.state) > severity(total.breaker.state) {
            total.breaker.state = s.breaker.state;
        }
        total.breaker.trips += s.breaker.trips;
        total.breaker.fast_failures += s.breaker.fast_failures;
        total.breaker.consecutive_failures = total
            .breaker
            .consecutive_failures
            .max(s.breaker.consecutive_failures);
        total.drift_events += s.drift_events;
        total.quarantined_qubits += s.quarantined_qubits;
        total.quarantined_links += s.quarantined_links;
        total.degraded += s.degraded;
        total.recovered += s.recovered;
        total.journal_appends += s.journal_appends;
        total.controller_swaps += s.controller_swaps;
        total.controller_reweights += s.controller_reweights;
        total.controller_recompiles += s.controller_recompiles;
        total.latency_p50_ms = total.latency_p50_ms.max(s.latency_p50_ms);
        total.latency_p99_ms = total.latency_p99_ms.max(s.latency_p99_ms);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_serve::queue::Priority;
    use qdevice::presets;

    fn ghz(n: u32) -> Circuit {
        let mut c = Circuit::new(n, n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c.measure_all();
        c
    }

    fn request(circuit: Circuit, shots: u64, seed: u64) -> JobRequest {
        JobRequest {
            circuit,
            shots,
            seed,
            priority: Priority::Normal,
        }
    }

    fn small_config() -> FleetConfig {
        FleetConfig {
            serve: ServeConfig {
                threads: 2,
                ..ServeConfig::default()
            },
            ..FleetConfig::default()
        }
    }

    fn three_device_fleet() -> Fleet<DeviceBackend> {
        Fleet::synthesize(
            &[
                (presets::melbourne14(), "melbourne14"),
                (presets::guadalupe16(), "guadalupe16"),
                (presets::tokyo20(), "tokyo20"),
            ],
            7,
            small_config(),
        )
    }

    #[test]
    fn routes_to_best_esp_and_completes() {
        let fleet = three_device_fleet();
        assert_eq!(fleet.num_devices(), 3);
        let candidates = fleet.candidates(&ghz(3));
        assert_eq!(candidates.len(), 3, "all devices can host a 3q circuit");
        assert!(candidates.iter().all(|c| c.healthy));
        assert!(
            candidates.windows(2).all(|w| w[0].score >= w[1].score),
            "candidates must be ESP-descending: {candidates:?}"
        );

        let ticket = fleet.submit(request(ghz(3), 512, 11)).unwrap();
        assert_eq!(ticket.device, candidates[0].device);
        assert_eq!(
            fleet.placement(ticket.id),
            Some((ticket.device, ticket.local_id))
        );
        assert!(matches!(fleet.poll(ticket.id), Some(JobState::Queued)));
        assert_eq!(fleet.process_all(), 1);
        assert!(matches!(fleet.poll(ticket.id), Some(JobState::Done(_))));
        assert!(fleet.poll(9999).is_none());
    }

    #[test]
    fn circuit_too_large_for_some_devices_routes_to_the_rest() {
        let fleet = three_device_fleet();
        // 16 qubits: melbourne14 (14q) cannot host it; guadalupe16 and
        // tokyo20 can.
        let candidates = fleet.candidates(&ghz(16));
        assert_eq!(candidates.len(), 2);
        assert!(candidates.iter().all(|c| c.device != 0));

        let ticket = fleet.submit(request(ghz(16), 128, 3)).unwrap();
        assert_ne!(ticket.device, 0);
        fleet.process_all();
        assert!(matches!(fleet.poll(ticket.id), Some(JobState::Done(_))));
    }

    #[test]
    fn unmappable_everywhere_is_a_route_error() {
        let fleet = three_device_fleet();
        let err = fleet.submit(request(ghz(24), 128, 3)).unwrap_err();
        assert!(matches!(err, RouteError::Unmappable { .. }), "got {err:?}");
    }

    #[test]
    fn depth_cap_fails_over_to_next_best() {
        let mut config = small_config();
        config.depth_cap = 1;
        let fleet = Fleet::synthesize(
            &[
                (presets::melbourne14(), "melbourne14"),
                (presets::guadalupe16(), "guadalupe16"),
            ],
            7,
            config,
        );
        let first = fleet.submit(request(ghz(3), 64, 1)).unwrap();
        // The best device now sits at the cap, so the next submission must
        // go elsewhere even though the score order is unchanged.
        let second = fleet.submit(request(ghz(3), 64, 2)).unwrap();
        assert_ne!(first.device, second.device);
        fleet.process_all();
        assert!(matches!(fleet.poll(first.id), Some(JobState::Done(_))));
        assert!(matches!(fleet.poll(second.id), Some(JobState::Done(_))));
    }

    #[test]
    fn fleet_ids_are_unique_and_stable_across_devices() {
        let fleet = three_device_fleet();
        let mut ids = std::collections::BTreeSet::new();
        for seed in 0..10 {
            let ticket = fleet.submit(request(ghz(3), 64, seed)).unwrap();
            assert!(ids.insert(ticket.id), "fleet ids must never repeat");
        }
        fleet.process_all();
        for id in ids {
            assert!(matches!(fleet.poll(id), Some(JobState::Done(_))));
        }
    }

    #[test]
    fn aggregate_stats_sums_and_takes_worst() {
        let fleet = three_device_fleet();
        for seed in 0..4 {
            fleet.submit(request(ghz(3), 64, seed)).unwrap();
        }
        fleet.process_all();
        let status = fleet.device_status();
        assert_eq!(status.len(), 3);
        let total = fleet.stats();
        assert_eq!(total.submitted, 4);
        assert_eq!(total.completed, 4);
        assert_eq!(
            total.submitted,
            status.iter().map(|d| d.stats.submitted).sum::<u64>()
        );
        assert_eq!(total.breaker.state, BreakerState::Closed);
    }

    fn live_ist_fleet() -> Fleet<DeviceBackend> {
        let mut config = small_config();
        config.routing = RoutingPolicy::LiveIst;
        Fleet::synthesize(
            &[
                (presets::melbourne14(), "melbourne14"),
                (presets::guadalupe16(), "guadalupe16"),
                (presets::tokyo20(), "tokyo20"),
            ],
            7,
            config,
        )
    }

    #[test]
    fn live_ist_matches_esp_routing_during_warmup() {
        let esp_fleet = three_device_fleet();
        let live_fleet = live_ist_fleet();
        let circuit = ghz(3);
        let esp_candidates = esp_fleet.candidates(&circuit);
        let live_candidates = live_fleet.candidates(&circuit);
        assert_eq!(esp_candidates.len(), live_candidates.len());
        for (a, b) in esp_candidates.iter().zip(&live_candidates) {
            assert_eq!(a.device, b.device);
            // Bit identity, not approximate: the cold quality factor is
            // exactly 1.0, so the scores are the very same floats.
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn live_ist_demotes_a_device_that_under_delivers() {
        let fleet = live_ist_fleet();
        let circuit = ghz(3);
        let best = fleet.route(&circuit).unwrap().device;
        // Severe sustained under-delivery on the ESP favorite: promised
        // 0.9, delivered near-uniform. Past warmup the factor clamps at
        // its 0.25 floor, which must push the device below its rivals.
        for _ in 0..8 {
            fleet.inject_quality_observation(best, 0.9, 0.02);
        }
        assert!(fleet.device_quality(best).warmed_up);
        let rerouted = fleet.route(&circuit).unwrap().device;
        assert_ne!(
            rerouted, best,
            "a drift-degraded device must lose the route"
        );
        let ticket = fleet.submit(request(ghz(3), 128, 5)).unwrap();
        assert_eq!(ticket.device, rerouted);
        fleet.process_all();
        assert!(matches!(fleet.poll(ticket.id), Some(JobState::Done(_))));
    }

    #[test]
    fn live_ist_routing_is_a_pure_function_of_the_history() {
        let build = || {
            let fleet = live_ist_fleet();
            for i in 0..12u32 {
                let observed = 0.8 - 0.05 * f64::from(i % 4);
                fleet.inject_quality_observation(i as usize % 3, 0.85, observed);
            }
            fleet
        };
        let a = build();
        let b = build();
        let circuit = ghz(4);
        let ca = a.candidates(&circuit);
        let cb = b.candidates(&circuit);
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(&cb) {
            assert_eq!(x.device, y.device);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
            assert_eq!(x.healthy, y.healthy);
        }
    }

    #[test]
    fn bump_calibration_touches_every_device() {
        let fleet = three_device_fleet();
        assert_eq!(fleet.bump_calibration_generation(), 1);
        for status in fleet.device_status() {
            assert_eq!(status.stats.cache.invalidated, 0);
        }
        assert_eq!(fleet.bump_calibration_generation(), 2);
    }
}
