//! The non-blocking multi-client connection layer.
//!
//! A sharded thread-per-core readiness loop over `std::net` non-blocking
//! sockets — no async runtime, no epoll binding, just `WouldBlock` as the
//! readiness signal. The listener is set non-blocking and shared by every
//! shard; each shard accepts into its own connection set and then
//! round-robins its connections:
//!
//! - **reads** go through a per-connection [`LineFramer`], so a request
//!   split across TCP segments reassembles and a malformed frame is
//!   answered with a reject-with-reason [`Response::Error`] instead of a
//!   hangup,
//! - **writes** buffer per connection: a partial write keeps the tail
//!   queued, and a connection whose buffered responses exceed the
//!   high-water mark stops being *read* until the client drains — per-
//!   connection backpressure that protects the fleet from slow readers,
//! - **execution** happens on dedicated per-device executor threads that
//!   loop `process_device`, so one device's batch never blocks another
//!   device or any socket I/O.
//!
//! The single-peer `edm-serve` binary is exactly one shard of this design
//! with stdin/stdout in place of sockets (it shares the framer and the
//! protocol handler semantics).

use crate::fleet::{Fleet, RouteError, Ticket};
use edm_core::Backend;
use edm_serve::framing::{Frame, LineFramer};
use edm_serve::protocol::{JobSummary, MetricFamily, Request, Response, SpanInfo};
use edm_serve::queue::JobRequest;
use edm_serve::service::JobState;
use edm_telemetry::trace::TraceContext;
use qcir::qasm;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Connection-layer knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection shards (readiness-polling threads).
    pub shards: usize,
    /// Per-frame byte bound fed to each connection's [`LineFramer`].
    pub max_frame: usize,
    /// Write-buffer high-water mark per connection: above it the shard
    /// stops reading that connection until the client drains.
    pub write_high_water: usize,
    /// Idle sleep between readiness sweeps when nothing was ready.
    pub idle_sleep: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get().clamp(1, 4))
                .unwrap_or(2),
            max_frame: edm_serve::framing::DEFAULT_MAX_FRAME,
            write_high_water: 1 << 20,
            idle_sleep: Duration::from_millis(1),
        }
    }
}

/// One live client connection owned by a shard.
struct Connection {
    stream: TcpStream,
    framer: LineFramer,
    /// Responses not yet accepted by the socket.
    out: Vec<u8>,
    closed: bool,
}

impl Connection {
    fn new(stream: TcpStream, max_frame: usize) -> Self {
        Connection {
            stream,
            framer: LineFramer::new(max_frame),
            out: Vec::new(),
            closed: false,
        }
    }

    fn queue_response(&mut self, response: &Response) {
        // A response that fails to serialize (e.g. a summary carrying a
        // non-finite float, which serde_json rejects) must not take the
        // whole shard down with it — the client gets an error frame and
        // every other connection on the shard keeps running.
        let line = serde_json::to_string(response).unwrap_or_else(|e| {
            edm_telemetry::counter!(
                "edm_fleet_response_serialize_errors_total",
                "Responses that failed to serialize and were replaced by an error frame"
            )
            .inc();
            serde_json::to_string(&Response::Error {
                reason: format!("internal error: response failed to serialize: {e}"),
            })
            // The fallback is a plain string-only variant; if even that
            // fails, emit a hand-built frame rather than panic.
            .unwrap_or_else(|_| {
                r#"{"Error":{"reason":"internal error: response failed to serialize"}}"#.into()
            })
        });
        self.out.extend_from_slice(line.as_bytes());
        self.out.push(b'\n');
    }

    /// Writes as much buffered output as the socket accepts right now.
    fn flush_some(&mut self) {
        while !self.out.is_empty() {
            match self.stream.write(&self.out) {
                Ok(0) => {
                    self.closed = true;
                    return;
                }
                Ok(n) => {
                    self.out.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    return;
                }
            }
        }
    }
}

/// The multi-client fleet server: a shared [`Fleet`] behind sharded
/// non-blocking socket loops and per-device executor threads.
pub struct FleetServer<B: Backend + Send + 'static> {
    fleet: Arc<Fleet<B>>,
    listener: TcpListener,
    addr: SocketAddr,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl<B: Backend + Send + 'static> FleetServer<B> {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) in front of
    /// `fleet`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(fleet: Fleet<B>, addr: &str, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(FleetServer {
            fleet: Arc::new(fleet),
            listener,
            addr,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared fleet (e.g. for a sidecar thread to inspect).
    pub fn fleet(&self) -> Arc<Fleet<B>> {
        Arc::clone(&self.fleet)
    }

    /// A handle that flips the shutdown flag (any `"Shutdown"` request
    /// does the same).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs shards + executors until a `Shutdown` request (or the handle)
    /// flips the flag, then joins every thread.
    pub fn run(self) {
        let FleetServer {
            fleet,
            listener,
            addr: _,
            config,
            shutdown,
        } = self;
        let mut threads: Vec<JoinHandle<()>> = Vec::new();

        // One executor per device: processing is per-device serialized
        // anyway (the device mutex), so more threads per device buy
        // nothing, while fewer would let one device's deep queue delay
        // another's.
        for device in 0..fleet.num_devices() {
            let fleet = Arc::clone(&fleet);
            let shutdown = Arc::clone(&shutdown);
            let idle = config.idle_sleep;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("fleet-exec-{device}"))
                    .spawn(move || {
                        while !shutdown.load(Ordering::SeqCst) {
                            if fleet.process_device(device) == 0 {
                                std::thread::sleep(idle);
                            }
                        }
                    })
                    .expect("spawn executor thread"),
            );
        }

        for shard in 0..config.shards.max(1) {
            let fleet = Arc::clone(&fleet);
            let shutdown = Arc::clone(&shutdown);
            let listener = listener.try_clone().expect("clone listener");
            let config = config.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("fleet-shard-{shard}"))
                    .spawn(move || shard_loop(&fleet, &listener, &config, &shutdown))
                    .expect("spawn shard thread"),
            );
        }

        for t in threads {
            let _ = t.join();
        }
    }
}

/// One shard: accept new connections, sweep owned connections for
/// readable requests and writable buffered responses.
fn shard_loop<B: Backend>(
    fleet: &Fleet<B>,
    listener: &TcpListener,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) {
    let mut connections: Vec<Connection> = Vec::new();
    let mut read_buf = [0u8; 16 * 1024];
    while !shutdown.load(Ordering::SeqCst) {
        let mut progressed = false;

        // Accept every connection currently pending. The listener is
        // shared: whichever shard gets there first owns the connection.
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_ok() {
                        stream.set_nodelay(true).ok();
                        connections.push(Connection::new(stream, config.max_frame));
                        progressed = true;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }

        for conn in connections.iter_mut() {
            // Drain buffered responses first: writability is this sweep's
            // only chance to make room below the high-water mark.
            if !conn.out.is_empty() {
                conn.flush_some();
                progressed = true;
            }
            if conn.closed {
                continue;
            }
            // Backpressure: a slow reader's requests stay in its socket
            // buffer (and eventually push back on the client) instead of
            // growing our write buffer without bound.
            if conn.out.len() >= config.write_high_water {
                continue;
            }
            match conn.stream.read(&mut read_buf) {
                Ok(0) => conn.closed = true,
                Ok(n) => {
                    progressed = true;
                    conn.framer.feed(&read_buf[..n]);
                    while let Some(frame) = conn.framer.next_frame() {
                        match frame_to_request(frame) {
                            Ok(None) => {}
                            Ok(Some(request)) => {
                                if matches!(request, Request::Shutdown) {
                                    conn.queue_response(&Response::Bye);
                                    shutdown.store(true, Ordering::SeqCst);
                                } else {
                                    let response = handle_request(fleet, request);
                                    conn.queue_response(&response);
                                }
                            }
                            Err(reason) => {
                                conn.queue_response(&Response::Error { reason });
                            }
                        }
                    }
                    conn.flush_some();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => conn.closed = true,
            }
        }
        connections.retain(|c| !(c.closed && c.out.is_empty()));

        if !progressed {
            std::thread::sleep(config.idle_sleep);
        }
    }
    // Final courtesy flush so `Bye` reaches the client that asked.
    for conn in connections.iter_mut() {
        conn.flush_some();
    }
}

/// Decodes one framer frame into a request; `Ok(None)` for blank lines,
/// `Err(reason)` for frames the client must be told were rejected.
fn frame_to_request(frame: Frame) -> Result<Option<Request>, String> {
    match frame {
        Frame::Line(line) => {
            if line.trim().is_empty() {
                return Ok(None);
            }
            serde_json::from_str::<Request>(&line)
                .map(Some)
                .map_err(|e| format!("bad request line: {e}"))
        }
        Frame::Oversized { length } => Err(format!("frame too long ({length} bytes, no newline)")),
        Frame::InvalidUtf8 => Err("request line is not valid UTF-8".into()),
    }
}

/// Serves one request against the fleet. Mirrors the single-device
/// binary's handler, with routing in place of direct submission; `Poll`
/// does NOT drive processing (the executor threads own that).
pub fn handle_request<B: Backend>(fleet: &Fleet<B>, request: Request) -> Response {
    match request {
        Request::Submit {
            qasm,
            shots,
            seed,
            priority,
            trace_id,
            parent_span,
        } => {
            // Link this shard's work under the client's trace: the shard
            // span covers parse + route + admission, and the routed
            // device's service spans (and the job's pool slices) hang off
            // it, so one trace id walks client → shard → device → slice.
            let _guard = edm_telemetry::trace::with_context(TraceContext {
                trace_id,
                parent_span,
            });
            let shard_span = edm_telemetry::trace::span("fleet_submit");
            let ctx = TraceContext {
                trace_id,
                // Telemetry off ⇒ the shard span never recorded; keep the
                // client's span as the remote parent instead of 0.
                parent_span: match shard_span.id() {
                    0 => parent_span,
                    id => id,
                },
            };
            let circuit = match qasm::parse(&qasm) {
                Ok(circuit) => circuit,
                Err(e) => {
                    return Response::Rejected {
                        reason: format!("bad qasm: {e}"),
                    }
                }
            };
            match fleet.submit_with_context(
                JobRequest {
                    circuit,
                    shots,
                    seed,
                    priority,
                },
                ctx,
            ) {
                Ok(Ticket { id, trace_id, .. }) => Response::Accepted { id, trace_id },
                Err(e @ RouteError::Empty) | Err(e @ RouteError::Unmappable { .. }) => {
                    Response::Rejected {
                        reason: e.to_string(),
                    }
                }
                Err(e @ RouteError::AllRejected { .. }) => Response::Rejected {
                    reason: e.to_string(),
                },
            }
        }
        Request::Poll { id } => match fleet.poll(id) {
            None => Response::Unknown { id },
            Some(JobState::Queued) => Response::Queued { id },
            Some(JobState::Failed(reason)) => Response::Failed { id, reason },
            Some(JobState::Done(done)) => Response::Finished {
                id,
                summary: JobSummary::from_result(
                    id,
                    fleet.trace_id(id).unwrap_or(0),
                    &done.result,
                    done.latency_ms,
                ),
            },
        },
        Request::Trace { id } => match fleet.trace_id(id) {
            Some(trace_id) => Response::Trace {
                id,
                trace_id,
                spans: edm_telemetry::trace::recorder()
                    .trace(trace_id)
                    .iter()
                    .map(SpanInfo::from)
                    .collect(),
            },
            None => Response::Unknown { id },
        },
        Request::Flush => Response::Processed {
            jobs: fleet.process_all() as u64,
        },
        Request::Stats => Response::Stats {
            stats: Box::new(fleet.stats()),
        },
        Request::FleetStats => Response::FleetStats {
            devices: fleet.device_status(),
        },
        Request::BumpCalibration => Response::Recalibrated {
            generation: fleet.bump_calibration_generation(),
        },
        Request::Metrics => Response::Metrics {
            families: edm_telemetry::metrics::registry()
                .snapshot()
                .iter()
                .map(MetricFamily::from_snapshot)
                .collect(),
        },
        Request::Shutdown => Response::Bye,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A connected loopback socket to hang a `Connection` on.
    fn loopback_connection() -> Connection {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let _accepted = listener.accept().unwrap();
        Connection::new(stream, edm_serve::framing::DEFAULT_MAX_FRAME)
    }

    #[test]
    fn unserializable_response_becomes_error_frame_not_panic() {
        // serde_json rejects non-finite floats, so a NaN top_probability
        // (e.g. from a degenerate merge) used to panic the whole shard.
        let poisoned = Response::Finished {
            id: 7,
            summary: JobSummary {
                id: 7,
                trace_id: 1,
                members: 4,
                shots: 1024,
                top_outcome: "101".into(),
                top_probability: f64::NAN,
                degraded: false,
                failed_members: 0,
                latency_ms: 3,
            },
        };
        let mut conn = loopback_connection();
        conn.queue_response(&poisoned);

        let line = String::from_utf8(conn.out.clone()).unwrap();
        assert!(line.ends_with('\n'));
        let parsed: Response = serde_json::from_str(line.trim_end()).unwrap();
        match parsed {
            Response::Error { reason } => {
                assert!(reason.contains("failed to serialize"), "{reason}")
            }
            other => panic!("expected an error frame, got {other:?}"),
        }

        // A healthy response still queues normally afterwards.
        conn.queue_response(&Response::Bye);
        let all = String::from_utf8(conn.out.clone()).unwrap();
        assert_eq!(all.lines().count(), 2);
    }
}
