//! `fleet_load` — concurrent-submitter load bench for the fleet server.
//!
//! Drives N concurrent client connections (default 1000) against a fleet
//! — self-hosted on an ephemeral port by default, or an external server
//! via `--connect` — and verifies zero lost and zero duplicated jobs:
//! every submission is retried until accepted, every accepted id must be
//! unique, and every id must reach a terminal state. Writes the serving
//! perf baseline (`results/BENCH_serve.json`: throughput, p50/p99
//! submit-to-finish latency) and can gate a fresh run against a committed
//! baseline with the same exit-65 convention as `pipeline_profile
//! --compare`.
//!
//! Flags:
//!
//! - `--clients N` — concurrent submitter connections (default 1000)
//! - `--jobs N` — jobs per client (default 1)
//! - `--shots N` — shot budget per job (default 64)
//! - `--devices N` — virtual devices when self-hosting (default 3)
//! - `--threads N` — per-device execution threads when self-hosting
//! - `--connect ADDR` — drive an already-running server instead
//! - `--out PATH` — where to write the bench JSON (default
//!   `results/BENCH_serve.json`)
//! - `--compare BASELINE` — gate against a baseline document; exit 65 on
//!   regression
//! - `--tolerance RATIO` — gate tolerance (default 1.5: throughput may
//!   drop to 1/1.5 of baseline, p99 may grow 1.5x, before failing)

use edm_fleet::fleet::{Fleet, FleetConfig};
use edm_fleet::server::{FleetServer, ServerConfig};
use edm_serve::protocol::{Request, Response};
use edm_serve::queue::Priority;
use edm_serve::service::ServeConfig;
use qcir::qasm;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// `sysexits.h` EX_DATAERR: the fresh run failed the perf gate.
const EXIT_REGRESSION: i32 = 65;

/// The serving-perf baseline document.
#[derive(Debug, Serialize, Deserialize)]
struct ServeBench {
    /// Always `"fleet_load"`.
    bench: String,
    clients: u64,
    jobs_per_client: u64,
    jobs: u64,
    devices: u64,
    shots: u64,
    elapsed_ms: u64,
    throughput_jobs_per_s: f64,
    p50_ms: u64,
    p99_ms: u64,
}

struct Args {
    clients: usize,
    jobs_per_client: usize,
    shots: u64,
    devices: usize,
    threads: Option<usize>,
    connect: Option<String>,
    out: std::path::PathBuf,
    compare: Option<std::path::PathBuf>,
    tolerance: f64,
}

fn parse_args() -> Args {
    let default_out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_serve.json");
    let mut out = Args {
        clients: 1000,
        jobs_per_client: 1,
        shots: 64,
        devices: 3,
        threads: None,
        connect: None,
        out: default_out,
        compare: None,
        tolerance: 1.5,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} expects a value");
                std::process::exit(2);
            })
        };
        let parse_num = |name: &str, v: String| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{name} expects an integer");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--clients" => out.clients = parse_num("--clients", value("--clients")) as usize,
            "--jobs" => out.jobs_per_client = parse_num("--jobs", value("--jobs")) as usize,
            "--shots" => out.shots = parse_num("--shots", value("--shots")),
            "--devices" => out.devices = parse_num("--devices", value("--devices")) as usize,
            "--threads" => out.threads = Some(parse_num("--threads", value("--threads")) as usize),
            "--connect" => out.connect = Some(value("--connect")),
            "--out" => out.out = value("--out").into(),
            "--compare" => out.compare = Some(value("--compare").into()),
            "--tolerance" => {
                out.tolerance = value("--tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("--tolerance expects a number");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "unknown flag {other}; supported: --clients N --jobs N --shots N \
                     --devices N --threads N --connect ADDR --out PATH \
                     --compare BASELINE --tolerance RATIO"
                );
                std::process::exit(2);
            }
        }
    }
    if out.clients == 0 || out.jobs_per_client == 0 || out.shots == 0 || out.devices == 0 {
        eprintln!("--clients/--jobs/--shots/--devices must be at least 1");
        std::process::exit(2);
    }
    out
}

fn workload_qasm() -> String {
    let mut c = qcir::Circuit::new(3, 3);
    c.h(0).cx(0, 1).cx(1, 2).measure_all();
    qasm::to_qasm(&c)
}

/// One client: submit every job (retrying rejections until accepted),
/// then poll each to a terminal state. Returns (ids, per-job latencies).
fn client_session(
    addr: &str,
    client: usize,
    jobs: usize,
    shots: u64,
    qasm: &str,
    failed: &AtomicBool,
) -> Option<(Vec<u64>, Vec<u64>)> {
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("client {client}: connect failed: {e}");
            failed.store(true, Ordering::SeqCst);
            return None;
        }
    };
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let mut line = String::new();
    let mut exchange = |req: &Request, line: &mut String| -> Option<Response> {
        let body = serde_json::to_string(req).expect("requests serialize");
        if writeln!(writer, "{body}").is_err() {
            return None;
        }
        line.clear();
        match reader.read_line(line) {
            Ok(0) | Err(_) => None,
            Ok(_) => serde_json::from_str(line).ok(),
        }
    };

    let deadline = Instant::now() + Duration::from_secs(120);
    let mut ids = Vec::with_capacity(jobs);
    let mut latencies = Vec::with_capacity(jobs);
    for job in 0..jobs {
        let seed = (client * jobs + job) as u64;
        let submitted_at = Instant::now();
        // Zero lost jobs: backpressure rejections are retried until the
        // queue accepts (or the deadline declares the run failed).
        let id = loop {
            match exchange(
                &Request::Submit {
                    qasm: qasm.to_string(),
                    shots,
                    seed,
                    priority: Priority::Normal,
                    trace_id: 0,
                    parent_span: 0,
                },
                &mut line,
            ) {
                Some(Response::Accepted { id, .. }) => break id,
                Some(Response::Rejected { .. }) => {
                    if Instant::now() > deadline {
                        eprintln!("client {client}: submit deadline exhausted");
                        failed.store(true, Ordering::SeqCst);
                        return None;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                other => {
                    eprintln!("client {client}: unexpected submit response: {other:?}");
                    failed.store(true, Ordering::SeqCst);
                    return None;
                }
            }
        };
        // Poll to a terminal state.
        loop {
            match exchange(&Request::Poll { id }, &mut line) {
                Some(Response::Finished { .. }) => break,
                Some(Response::Queued { .. }) => {
                    if Instant::now() > deadline {
                        eprintln!("client {client}: job {id} never finished");
                        failed.store(true, Ordering::SeqCst);
                        return None;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Some(Response::Failed { reason, .. }) => {
                    eprintln!("client {client}: job {id} failed: {reason}");
                    failed.store(true, Ordering::SeqCst);
                    return None;
                }
                other => {
                    eprintln!("client {client}: unexpected poll response: {other:?}");
                    failed.store(true, Ordering::SeqCst);
                    return None;
                }
            }
        }
        ids.push(id);
        latencies.push(submitted_at.elapsed().as_millis() as u64);
    }
    Some((ids, latencies))
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

fn main() {
    let args = parse_args();
    let qasm = workload_qasm();

    // Self-host unless --connect points at a live server.
    let (addr, server_thread, shutdown) = match &args.connect {
        Some(addr) => (addr.clone(), None, None),
        None => {
            let mut serve = ServeConfig::default();
            if let Some(threads) = args.threads {
                serve.threads = threads;
            }
            let depth_cap = (serve.queue_capacity / 4).max(1);
            let cycle = [
                (qdevice::presets::melbourne14(), "melbourne14"),
                (qdevice::presets::guadalupe16(), "guadalupe16"),
                (qdevice::presets::tokyo20(), "tokyo20"),
            ];
            let members: Vec<(qdevice::Topology, &str)> = (0..args.devices)
                .map(|i| cycle[i % cycle.len()].clone())
                .collect();
            let fleet = Fleet::synthesize(
                &members,
                42,
                FleetConfig {
                    serve,
                    depth_cap,
                    routing: Default::default(),
                },
            );
            let server = FleetServer::bind(fleet, "127.0.0.1:0", ServerConfig::default())
                .expect("bind fleet server");
            let addr = server.local_addr().to_string();
            let shutdown = server.shutdown_handle();
            let handle = std::thread::spawn(move || server.run());
            (addr, Some(handle), Some(shutdown))
        }
    };

    let total_jobs = args.clients * args.jobs_per_client;
    eprintln!(
        "fleet_load: {} client(s) x {} job(s) against {addr}",
        args.clients, args.jobs_per_client
    );

    let failed = Arc::new(AtomicBool::new(false));
    let all_ids = Arc::new(Mutex::new(Vec::with_capacity(total_jobs)));
    let all_latencies = Arc::new(Mutex::new(Vec::with_capacity(total_jobs)));
    let started = Instant::now();
    let mut clients = Vec::with_capacity(args.clients);
    for client in 0..args.clients {
        let addr = addr.clone();
        let qasm = qasm.clone();
        let failed = Arc::clone(&failed);
        let all_ids = Arc::clone(&all_ids);
        let all_latencies = Arc::clone(&all_latencies);
        let jobs = args.jobs_per_client;
        let shots = args.shots;
        clients.push(
            std::thread::Builder::new()
                .name(format!("client-{client}"))
                .stack_size(128 * 1024)
                .spawn(move || {
                    if let Some((ids, lats)) =
                        client_session(&addr, client, jobs, shots, &qasm, &failed)
                    {
                        all_ids.lock().expect("ids lock").extend(ids);
                        all_latencies.lock().expect("latency lock").extend(lats);
                    }
                })
                .expect("spawn client thread"),
        );
    }
    for c in clients {
        let _ = c.join();
    }
    let elapsed = started.elapsed();

    if let (Some(shutdown), Some(handle)) = (shutdown, server_thread) {
        shutdown.store(true, Ordering::SeqCst);
        let _ = handle.join();
    }

    if failed.load(Ordering::SeqCst) {
        eprintln!("fleet_load: FAILED — at least one client lost a job");
        std::process::exit(1);
    }

    // Zero lost, zero duplicated: exactly total_jobs ids, all distinct.
    let ids = all_ids.lock().expect("ids lock");
    let distinct: std::collections::BTreeSet<u64> = ids.iter().copied().collect();
    assert_eq!(
        ids.len(),
        total_jobs,
        "every submitted job must reach a terminal state"
    );
    assert_eq!(
        distinct.len(),
        total_jobs,
        "fleet ids must never be duplicated"
    );

    let mut latencies = all_latencies.lock().expect("latency lock").clone();
    latencies.sort_unstable();
    let elapsed_ms = elapsed.as_millis() as u64;
    let doc = ServeBench {
        bench: "fleet_load".into(),
        clients: args.clients as u64,
        jobs_per_client: args.jobs_per_client as u64,
        jobs: total_jobs as u64,
        devices: args.devices as u64,
        shots: args.shots,
        elapsed_ms,
        throughput_jobs_per_s: total_jobs as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: percentile(&latencies, 50),
        p99_ms: percentile(&latencies, 99),
    };
    let json = serde_json::to_string_pretty(&doc).expect("bench document serializes");
    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&args.out, json).expect("write bench JSON");
    println!(
        "wrote {}: {} job(s) in {}ms, {:.1} jobs/s, p50 {}ms, p99 {}ms",
        args.out.display(),
        doc.jobs,
        doc.elapsed_ms,
        doc.throughput_jobs_per_s,
        doc.p50_ms,
        doc.p99_ms
    );

    if let Some(baseline_path) = &args.compare {
        let baseline_json = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {}: {e}", baseline_path.display());
            std::process::exit(2);
        });
        let baseline: ServeBench = serde_json::from_str(&baseline_json).unwrap_or_else(|e| {
            eprintln!("baseline {} is not a bench: {e}", baseline_path.display());
            std::process::exit(2);
        });
        let mut regressions = Vec::new();
        if doc.throughput_jobs_per_s < baseline.throughput_jobs_per_s / args.tolerance {
            regressions.push(format!(
                "throughput {:.1} jobs/s below baseline {:.1} / {:.2}",
                doc.throughput_jobs_per_s, baseline.throughput_jobs_per_s, args.tolerance
            ));
        }
        // A sub-floor baseline p99 is timer noise; only gate meaningful ones.
        if baseline.p99_ms >= 5 && doc.p99_ms as f64 > baseline.p99_ms as f64 * args.tolerance {
            regressions.push(format!(
                "p99 {}ms above baseline {}ms x {:.2}",
                doc.p99_ms, baseline.p99_ms, args.tolerance
            ));
        }
        if regressions.is_empty() {
            println!(
                "perf gate: OK (within {:.2}x of {})",
                args.tolerance,
                baseline_path.display()
            );
        } else {
            eprintln!(
                "perf gate: FAIL — {} regression(s) vs {}:",
                regressions.len(),
                baseline_path.display()
            );
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(EXIT_REGRESSION);
        }
    }
}
