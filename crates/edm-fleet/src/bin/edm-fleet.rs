//! `edm-fleet` — a multi-client TCP front end over a fleet of virtual
//! devices.
//!
//! ```text
//! edm-fleet [--addr HOST:PORT] [--devices N] [--device-seed N] [--shards N]
//!           [--presets NAME,NAME,...] [--threads N] [--queue N] [--cache N]
//!           [--batch N] [--depth-cap N] [--metrics-port N]
//!           [--routing esp|live-ist] [--trace-out FILE]
//! ```
//!
//! Speaks the same JSON-lines protocol as `edm-serve`, over TCP, against
//! N virtual devices (topology presets cycle melbourne14 → guadalupe16 →
//! tokyo20 by default, or any `--presets` list of `qdevice::presets`
//! names, each synthesized from `--device-seed + index`). Every
//! submission is routed to the device with the highest predicted ESP for
//! its circuit; results are bit-identical to a direct single-device run
//! with the same (device, seed). Prints `fleet listening on ADDR` to
//! stderr once ready; any client's `"Shutdown"` stops the server.

use edm_fleet::fleet::{Fleet, FleetConfig, RoutingPolicy};
use edm_fleet::server::{FleetServer, ServerConfig};
use edm_serve::exitcode;
use edm_serve::journal::JournalError;
use edm_serve::service::ServeConfig;
use edm_serve::validate;
use qdevice::presets;
use std::process::ExitCode;

const USAGE: &str = "usage:
  edm-fleet [--addr HOST:PORT] [--devices N] [--device-seed N] [--shards N]
            [--presets NAME,NAME,...] [--threads N] [--queue N] [--cache N]
            [--batch N] [--depth-cap N] [--metrics-port N]
            [--journal-dir DIR] [--controller] [--routing esp|live-ist]
            [--trace-out FILE]

Speaks the edm-serve JSON-lines protocol over TCP against a fleet of N
virtual devices (presets cycle melbourne14, guadalupe16, tokyo20 by
default; --presets takes a comma-separated list of preset names —
melbourne14, guadalupe16, tokyo20, falcon27, hummingbird65, eagle127 — to
cycle instead; device i is synthesized from --device-seed + i).
Submissions route to the device with the highest predicted ESP;
\"FleetStats\" reports per-device status.

--addr defaults to 127.0.0.1:0 (ephemeral port); the bound address is
printed to stderr as `fleet listening on ADDR`.

--metrics-port N serves Prometheus text on http://127.0.0.1:N/metrics with
per-device label families (edm_fleet_*{device=\"dI\"}); port 0 picks an
ephemeral port, printed to stderr.

--journal-dir DIR keeps crash-safe write-ahead journals under DIR: one
per device (device-I.jsonl) plus a fleet index (fleet-index.jsonl).
Restarting with the same DIR replays unfinished jobs bit-identically on
their original devices and keeps old fleet job ids pollable.

--controller enables the closed-loop adaptive controller on every device:
feedback that reweights WEDM merges, swaps underperforming ensemble
members, and recompiles layouts after calibration changes.

--routing picks the scheduler's scoring policy: `esp` (default) scores by
compile-time predicted ESP alone; `live-ist` multiplies each device's ESP
by its live quality factor (EWMA of observed top-outcome share vs promised
ESP) once that device's estimator has warmed up, so a drift-degraded
device sheds traffic. Before warmup live-ist routes identically to esp.

--trace-out FILE appends every finished span to FILE as JSON lines (also
enables telemetry). The file rotates to FILE.1 when it exceeds 16 MiB;
drops are counted in edm_telemetry_trace_export_dropped_total.

exit codes:
  0   success
  1   unclassified failure
  2   usage error (bad flags)
  65  data error (corrupt journal)";

fn flag(args: &[String], name: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .map(Some)
            .ok_or_else(|| format!("{name} expects an integer")),
        None => Ok(None),
    }
}

fn text_flag(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{name} expects a value")),
        None => Ok(None),
    }
}

struct Parsed {
    addr: String,
    devices: usize,
    device_seed: u64,
    presets: Vec<(qdevice::Topology, String)>,
    fleet_config: FleetConfig,
    server_config: ServerConfig,
    metrics_port: Option<u64>,
    journal_dir: Option<String>,
    trace_out: Option<String>,
}

/// Parses `--presets a,b,c` into topologies, defaulting to the original
/// three-preset cycle so existing deployments (and the fleet smoke test)
/// see identical devices.
fn presets_flag(args: &[String]) -> Result<Vec<(qdevice::Topology, String)>, String> {
    let spec = match text_flag(args, "--presets")? {
        Some(spec) => spec,
        None => "melbourne14,guadalupe16,tokyo20".into(),
    };
    let mut cycle = Vec::new();
    for name in spec.split(',').map(str::trim).filter(|n| !n.is_empty()) {
        let topology = presets::by_name(name).ok_or_else(|| {
            format!(
                "--presets: unknown preset '{name}' (expected one of: {})",
                presets::NAMES.join(", ")
            )
        })?;
        cycle.push((topology, name.to_string()));
    }
    if cycle.is_empty() {
        return Err("--presets needs at least one preset name".into());
    }
    Ok(cycle)
}

fn parse(args: &[String]) -> Result<Parsed, String> {
    let addr = text_flag(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:0".into());
    let devices = flag(args, "--devices")?.unwrap_or(3);
    if devices == 0 {
        return Err("--devices must be at least 1".into());
    }
    let preset_cycle = presets_flag(args)?;
    let device_seed = flag(args, "--device-seed")?.unwrap_or(42);
    let mut serve = ServeConfig::default();
    if let Some(threads) = validate::threads(flag(args, "--threads")?).map_err(|e| e.to_string())? {
        serve.threads = threads;
    }
    if let Some(queue) = flag(args, "--queue")? {
        if queue == 0 {
            return Err("--queue must be at least 1".into());
        }
        serve.queue_capacity = queue as usize;
    }
    if let Some(cache) = flag(args, "--cache")? {
        if cache == 0 {
            return Err("--cache must be at least 1".into());
        }
        serve.cache_capacity = cache as usize;
    }
    if let Some(batch) = flag(args, "--batch")? {
        if batch == 0 {
            return Err("--batch must be at least 1".into());
        }
        serve.max_batch_jobs = batch as usize;
    }
    let depth_cap = match flag(args, "--depth-cap")? {
        Some(0) => return Err("--depth-cap must be at least 1".into()),
        Some(cap) => (cap as usize).min(serve.queue_capacity),
        None => (serve.queue_capacity / 4).max(1),
    };
    let mut server_config = ServerConfig::default();
    if let Some(shards) = flag(args, "--shards")? {
        if shards == 0 {
            return Err("--shards must be at least 1".into());
        }
        server_config.shards = shards as usize;
    }
    if args.iter().any(|a| a == "--controller") {
        serve.controller = Some(edm_core::ControllerConfig::default());
    }
    let routing = match text_flag(args, "--routing")? {
        Some(spec) => spec.parse::<RoutingPolicy>().map_err(|e| e.to_string())?,
        None => RoutingPolicy::default(),
    };
    let journal_dir = text_flag(args, "--journal-dir")?;
    let trace_out = text_flag(args, "--trace-out")?;
    let metrics_port = flag(args, "--metrics-port")?;
    if let Some(port) = metrics_port {
        if port > u64::from(u16::MAX) {
            return Err("--metrics-port must fit in 16 bits".into());
        }
    }
    Ok(Parsed {
        addr,
        devices: devices as usize,
        device_seed,
        presets: preset_cycle,
        fleet_config: FleetConfig {
            serve,
            depth_cap,
            routing,
        },
        server_config,
        metrics_port,
        journal_dir,
        trace_out,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let parsed = match parse(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(exitcode::USAGE);
        }
    };

    let _metrics_server = match parsed.metrics_port {
        Some(port) => {
            edm_telemetry::set_enabled(true);
            match edm_telemetry::http::serve(port as u16) {
                Ok(server) => {
                    eprintln!("metrics listening on http://{}/metrics", server.addr());
                    Some(server)
                }
                Err(e) => {
                    eprintln!("error: cannot bind metrics port {port}: {e}");
                    return ExitCode::from(exitcode::FAILURE);
                }
            }
        }
        None => None,
    };

    if let Some(path) = &parsed.trace_out {
        edm_telemetry::set_enabled(true);
        if let Err(e) = edm_telemetry::trace::set_trace_file(
            path,
            edm_telemetry::trace::DEFAULT_TRACE_FILE_MAX_BYTES,
        ) {
            eprintln!("error: cannot open trace file {path}: {e}");
            return ExitCode::from(exitcode::FAILURE);
        }
        eprintln!("traces appending to {path}");
    }

    // Heterogeneous by construction: presets cycle, and each device gets
    // its own synthesis seed, so calibrations (and therefore ESP scores)
    // genuinely differ across the fleet.
    let cycle = &parsed.presets;
    let members: Vec<(qdevice::Topology, &str)> = (0..parsed.devices)
        .map(|i| {
            let (topology, name) = &cycle[i % cycle.len()];
            (topology.clone(), name.as_str())
        })
        .collect();
    let fleet = Fleet::synthesize(&members, parsed.device_seed, parsed.fleet_config);
    if let Some(dir) = &parsed.journal_dir {
        match fleet.attach_journals(dir) {
            Ok(recovered) if recovered > 0 => {
                eprintln!("recovered {recovered} unfinished job(s) from {dir}");
            }
            Ok(_) => {}
            Err(e @ JournalError::Corrupt { .. }) => {
                eprintln!("error: {e}");
                return ExitCode::from(exitcode::DATA);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(exitcode::FAILURE);
            }
        }
    }

    let server = match FleetServer::bind(fleet, &parsed.addr, parsed.server_config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", parsed.addr);
            return ExitCode::from(exitcode::FAILURE);
        }
    };
    eprintln!("fleet listening on {}", server.local_addr());
    server.run();
    ExitCode::SUCCESS
}
