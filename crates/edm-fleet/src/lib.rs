//! # edm-fleet — variability-aware fleet serving for the EDM pipeline
//!
//! The paper's argument — route work where predicted success probability
//! is highest, and diversify so mistakes decorrelate — applied one level
//! up from qubit mappings: a fleet of heterogeneous virtual devices
//! (distinct topology presets and calibration snapshots), each wrapping
//! its own full [`JobService`](edm_serve::service::JobService) stack, fed
//! by thousands of concurrent JSON-lines connections.
//!
//! - [`backend`] — [`DeviceBackend`](backend::DeviceBackend), an owning
//!   [`Backend`](edm_core::Backend) over a device model (breaks the
//!   borrow cycle a long-lived fleet would otherwise have),
//! - [`fleet`] — the [`Fleet`](fleet::Fleet) scheduler: per-circuit ESP
//!   scoring across devices (optionally corrected by each device's live
//!   answer-quality estimator under
//!   [`RoutingPolicy::LiveIst`](fleet::RoutingPolicy)), deterministic
//!   tie-breaking, breaker/quarantine/depth-aware failover, fleet-wide
//!   job ids,
//! - [`server`] — the sharded non-blocking connection layer
//!   ([`FleetServer`](server::FleetServer)): `std::net` readiness polling
//!   (no async runtime), per-connection framing via
//!   [`LineFramer`](edm_serve::framing::LineFramer), write buffering with
//!   per-connection backpressure, per-device executor threads.
//!
//! ## Determinism contract
//!
//! Routing picks a device but never rewrites the request, so a
//! fleet-routed result is bit-identical to a direct single-device
//! [`JobService`](edm_serve::service::JobService) run on the chosen device
//! with the same `(circuit, shots, seed)` — see DESIGN.md §7 and §12.
//!
//! # Examples
//!
//! ```
//! use edm_fleet::fleet::{Fleet, FleetConfig};
//! use edm_serve::queue::{JobRequest, Priority};
//! use edm_serve::service::JobState;
//! use qdevice::presets;
//!
//! let fleet = Fleet::synthesize(
//!     &[
//!         (presets::melbourne14(), "melbourne14"),
//!         (presets::tokyo20(), "tokyo20"),
//!     ],
//!     42,
//!     FleetConfig::default(),
//! );
//! let mut ghz = qcir::Circuit::new(3, 3);
//! ghz.h(0).cx(0, 1).cx(1, 2).measure_all();
//! let ticket = fleet.submit(JobRequest {
//!     circuit: ghz,
//!     shots: 1024,
//!     seed: 7,
//!     priority: Priority::Normal,
//! })?;
//! fleet.process_all();
//! assert!(matches!(fleet.poll(ticket.id), Some(JobState::Done(_))));
//! # Ok::<(), edm_fleet::fleet::RouteError>(())
//! ```

#![deny(missing_docs)]

pub mod backend;
pub mod fleet;
pub mod server;
