//! An owning [`Backend`] over a device model.
//!
//! [`NoisySimulator`] borrows its topology and noise
//! parameters, which is perfect for one-shot pipelines but makes a
//! long-lived fleet self-referential: the fleet would own the device and a
//! simulator borrowing it. [`DeviceBackend`] breaks the cycle by owning the
//! [`DeviceModel`] behind an `Arc` and constructing the (two-reference,
//! trivially cheap) simulator inside each call. Delegating both entry
//! points to the simulator keeps the pool-based batch override — and with
//! it the bit-identical-for-any-thread-count contract — intact.

use edm_core::{Backend, BatchJob};
use qcir::Circuit;
use qdevice::DeviceModel;
use qsim::counts::Counts;
use qsim::{NoisySimulator, SimError};
use std::sync::Arc;

/// A [`Backend`] that owns its device, cloneable across threads.
#[derive(Debug, Clone)]
pub struct DeviceBackend {
    device: Arc<DeviceModel>,
}

impl DeviceBackend {
    /// Wraps a device model.
    pub fn new(device: Arc<DeviceModel>) -> Self {
        DeviceBackend { device }
    }

    /// The wrapped device.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }
}

impl Backend for DeviceBackend {
    fn execute(&self, circuit: &Circuit, shots: u64, seed: u64) -> Result<Counts, SimError> {
        NoisySimulator::from_device(&self.device).run(circuit, shots, seed)
    }

    fn execute_batch(
        &self,
        jobs: &[BatchJob<'_>],
        threads: usize,
    ) -> Vec<Result<Counts, SimError>> {
        NoisySimulator::from_device(&self.device).run_batch(jobs, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdevice::presets;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure_all();
        c
    }

    #[test]
    fn owning_backend_matches_borrowing_simulator() {
        let device = Arc::new(DeviceModel::synthesize(presets::melbourne14(), 5));
        let backend = DeviceBackend::new(Arc::clone(&device));
        let sim = NoisySimulator::from_device(&device);
        let c = bell();
        assert_eq!(
            backend.execute(&c, 512, 9).unwrap(),
            sim.run(&c, 512, 9).unwrap()
        );

        let jobs = [BatchJob::new(&c, 256, 1), BatchJob::new(&c, 256, 2)];
        let owned: Vec<_> = backend
            .execute_batch(&jobs, 2)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        let borrowed: Vec<_> = sim
            .run_batch(&jobs, 1)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(owned, borrowed, "thread count must not matter");
    }
}
