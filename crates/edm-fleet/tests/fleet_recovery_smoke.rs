//! Kill-and-restart smoke test of the `edm-fleet` binary with
//! `--journal-dir`: jobs acknowledged before a SIGKILL are replayed on
//! their original devices by the next process, previously issued fleet
//! ids keep resolving, and fresh ids never collide with pre-crash ones.

use edm_serve::protocol::{Request, Response};
use edm_serve::queue::Priority;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn ghz_qasm() -> String {
    let mut c = qcir::Circuit::new(3, 3);
    c.h(0).cx(0, 1).cx(1, 2).measure_all();
    qcir::qasm::to_qasm(&c)
}

/// A running `edm-fleet` process plus the address it printed to stderr.
struct Server {
    child: Child,
    addr: String,
    recovered: u64,
}

fn spawn(journal_dir: &str) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_edm-fleet"))
        .args(["--devices", "2", "--threads", "2", "--addr", "127.0.0.1:0"])
        .args(["--journal-dir", journal_dir])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn edm-fleet");
    // The binary prints `recovered N unfinished job(s) ...` (if any) and
    // then `fleet listening on ADDR`, both to stderr, before serving.
    let stderr = child.stderr.take().expect("stderr piped");
    let mut reader = BufReader::new(stderr);
    let mut recovered = 0;
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read stderr");
        assert!(n > 0, "edm-fleet exited before listening");
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("recovered ") {
            let count = rest.split_whitespace().next().unwrap_or("0");
            recovered = count.parse().expect("recovered count parses");
        }
        if let Some(addr) = line.strip_prefix("fleet listening on ") {
            break addr.to_string();
        }
    };
    Server {
        child,
        addr,
        recovered,
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to fleet server");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("set read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn exchange(&mut self, request: &Request) -> Response {
        let mut line = serde_json::to_string(request).expect("request serializes");
        line.push('\n');
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection unexpectedly");
        serde_json::from_str(&line).expect("response parses")
    }

    fn submit(&mut self, shots: u64, seed: u64) -> u64 {
        match self.exchange(&Request::Submit {
            qasm: ghz_qasm(),
            shots,
            seed,
            priority: Priority::Normal,
            trace_id: 0,
            parent_span: 0,
        }) {
            Response::Accepted { id, .. } => id,
            other => panic!("expected Accepted, got {other:?}"),
        }
    }

    /// Polls until the job leaves the queue; `true` iff it finished.
    fn resolve(&mut self, id: u64) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            match self.exchange(&Request::Poll { id }) {
                Response::Finished { .. } => return true,
                Response::Unknown { .. } => return false,
                Response::Queued { .. } => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "job {id} never finished"
                    );
                    std::thread::sleep(Duration::from_millis(5));
                }
                other => panic!("expected Finished/Unknown/Queued for {id}, got {other:?}"),
            }
        }
    }
}

#[test]
fn killed_fleet_replays_its_journals_on_restart() {
    let dir = std::env::temp_dir().join(format!(
        "edm-fleet-smoke-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let dir_arg = dir.to_str().unwrap().to_string();

    // First fleet: ack a burst of jobs, then die hard. Each Accepted ack
    // proves the routed device journaled the job before replying, so
    // every acked id is either on disk as unfinished (replays) or made it
    // all the way to completion before the kill.
    let mut server = spawn(&dir_arg);
    assert_eq!(server.recovered, 0, "an empty dir recovers nothing");
    let mut client = Client::connect(&server.addr);
    let ids: Vec<u64> = (0..8).map(|seed| client.submit(4096, seed)).collect();
    server.child.kill().expect("SIGKILL edm-fleet");
    server.child.wait().expect("reap edm-fleet");

    // Second fleet: replays the device journals, restores the fleet
    // id → (device, local id) index, and finishes the survivors.
    let mut server = spawn(&dir_arg);
    assert!(
        server.recovered >= 1,
        "a burst of 8 jobs cannot all have finished before the kill"
    );
    let mut client = Client::connect(&server.addr);
    let finished = ids.iter().filter(|&&id| client.resolve(id)).count() as u64;
    assert_eq!(
        finished, server.recovered,
        "every recovered job must finish under its pre-crash fleet id"
    );
    // The index journal also restored the id allocator: a fresh
    // submission must not collide with any pre-crash id.
    let fresh = client.submit(64, 99);
    assert!(
        fresh > *ids.iter().max().unwrap(),
        "fresh id {fresh} collides with pre-crash ids {ids:?}"
    );
    assert!(client.resolve(fresh));
    assert!(matches!(client.exchange(&Request::Shutdown), Response::Bye));
    assert!(server.child.wait().expect("edm-fleet exits").success());

    // Third start: everything is journaled complete, so nothing replays
    // and the old ids are gone.
    let mut server = spawn(&dir_arg);
    assert_eq!(server.recovered, 0);
    let mut client = Client::connect(&server.addr);
    assert!(matches!(
        client.exchange(&Request::Poll { id: ids[0] }),
        Response::Unknown { .. }
    ));
    assert!(matches!(client.exchange(&Request::Shutdown), Response::Bye));
    assert!(server.child.wait().expect("edm-fleet exits").success());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_device_journal_exits_with_the_data_code() {
    let dir = std::env::temp_dir().join(format!(
        "edm-fleet-corrupt-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("device-0.jsonl"),
        "{\"garbage\": true}\n{\"more\": 1}\n",
    )
    .unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_edm-fleet"))
        .args(["--devices", "2", "--journal-dir", dir.to_str().unwrap()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("run edm-fleet");
    assert_eq!(
        output.status.code(),
        Some(65),
        "corrupt journal is EX_DATAERR"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("journal"), "stderr was: {stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}
