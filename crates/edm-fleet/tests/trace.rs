//! Cross-process trace propagation over the fleet's TCP front end.
//!
//! The client is the trace's origin: it mints a trace id and a root span
//! id and stamps both on its `Submit` frame. Everything downstream — the
//! connection shard, the routed device's `JobService`, the execution
//! pool's per-slice spans — must link into that one trace, retrievable
//! afterwards through the `Trace` request by the fleet job id.

use edm_fleet::fleet::{Fleet, FleetConfig};
use edm_fleet::server::{FleetServer, ServerConfig};
use edm_serve::protocol::{Request, Response, SpanInfo};
use edm_serve::queue::Priority;
use edm_serve::service::ServeConfig;
use qdevice::presets;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn ghz_qasm() -> String {
    let mut c = qcir::Circuit::new(3, 3);
    c.h(0).cx(0, 1).cx(1, 2).measure_all();
    qcir::qasm::to_qasm(&c)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to fleet server");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn exchange(&mut self, request: &Request) -> Response {
        let mut line = serde_json::to_string(request).expect("request serializes");
        line.push('\n');
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection unexpectedly");
        serde_json::from_str(&line).expect("response parses")
    }
}

#[test]
fn client_stamped_trace_covers_shard_device_and_pool_slices() {
    // The test binary shares the process-global recorder, but the Trace
    // request filters by trace id, so other tests' spans never leak in.
    edm_telemetry::set_enabled(true);

    let fleet = Fleet::synthesize(
        &[
            (presets::melbourne14(), "melbourne14"),
            (presets::tokyo20(), "tokyo20"),
        ],
        7,
        FleetConfig {
            serve: ServeConfig {
                threads: 2,
                ..ServeConfig::default()
            },
            ..FleetConfig::default()
        },
    );
    let server = FleetServer::bind(fleet, "127.0.0.1:0", ServerConfig::default())
        .expect("bind fleet server");
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    // The "client process": a trace id and root-span id minted out-of-band
    // (in production `edm-cli run --connect` mints these via telemetry).
    let client_trace: u64 = 0xA11C_E5ED_0000_0042;
    let client_span: u64 = 7_777;

    let mut client = Client::connect(&addr);
    let id = match client.exchange(&Request::Submit {
        qasm: ghz_qasm(),
        shots: 256,
        seed: 11,
        priority: Priority::Normal,
        trace_id: client_trace,
        parent_span: client_span,
    }) {
        Response::Accepted { id, trace_id } => {
            assert_eq!(
                trace_id, client_trace,
                "the server must adopt the client's trace id, not mint its own"
            );
            id
        }
        other => panic!("expected Accepted, got {other:?}"),
    };

    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        match client.exchange(&Request::Poll { id }) {
            Response::Finished { .. } => break,
            Response::Queued { .. } => {
                assert!(std::time::Instant::now() < deadline, "job never finished");
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("expected Finished/Queued, got {other:?}"),
        }
    }

    let spans: Vec<SpanInfo> = match client.exchange(&Request::Trace { id }) {
        Response::Trace {
            trace_id, spans, ..
        } => {
            assert_eq!(trace_id, client_trace);
            spans
        }
        other => panic!("expected Trace, got {other:?}"),
    };

    assert!(
        spans.iter().all(|s| s.trace_id == client_trace),
        "every retained span must carry the client's trace id: {spans:?}"
    );
    let names: std::collections::BTreeSet<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    for required in [
        "fleet_submit",
        "serve_admit",
        "serve_plan",
        "serve_assemble",
        "pool_slice",
    ] {
        assert!(
            names.contains(required),
            "trace must contain a {required} span; got {names:?}"
        );
    }

    // Parentage: the shard span hangs off the client's root span, the
    // device's admission span hangs off the shard span, and so do the
    // executor-side spans and the pool slices (the shard span is the
    // remote parent every cross-thread stage re-installs).
    let shard = spans.iter().find(|s| s.name == "fleet_submit").unwrap();
    assert_eq!(
        shard.parent_id, client_span,
        "the shard span must link under the client's span"
    );
    for name in ["serve_admit", "serve_plan", "serve_assemble", "pool_slice"] {
        for span in spans.iter().filter(|s| s.name == name) {
            assert_eq!(
                span.parent_id, shard.id,
                "{name} must link under the shard span; got {span:?}"
            );
        }
    }

    // An unknown job id answers Unknown rather than an empty trace.
    assert!(matches!(
        client.exchange(&Request::Trace { id: 99_999 }),
        Response::Unknown { id: 99_999 }
    ));

    assert!(matches!(client.exchange(&Request::Shutdown), Response::Bye));
    server_thread.join().expect("server thread exits cleanly");
}

#[test]
fn untraced_submissions_still_mint_a_server_side_trace() {
    edm_telemetry::set_enabled(true);
    let fleet = Fleet::synthesize(
        &[(presets::melbourne14(), "melbourne14")],
        3,
        FleetConfig {
            serve: ServeConfig {
                threads: 2,
                ..ServeConfig::default()
            },
            ..FleetConfig::default()
        },
    );
    let server = FleetServer::bind(fleet, "127.0.0.1:0", ServerConfig::default())
        .expect("bind fleet server");
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&addr);
    // A pre-trace-aware client: raw JSON with no trace fields at all.
    let raw = format!(
        "{{\"Submit\":{{\"qasm\":{},\"shots\":64,\"seed\":1,\"priority\":\"Normal\"}}}}\n",
        serde_json::to_string(&ghz_qasm()).unwrap()
    );
    client.writer.write_all(raw.as_bytes()).expect("write raw");
    client.writer.flush().expect("flush raw");
    let mut line = String::new();
    client.reader.read_line(&mut line).expect("read response");
    let trace_id = match serde_json::from_str::<Response>(&line).expect("response parses") {
        Response::Accepted { trace_id, .. } => {
            assert_ne!(trace_id, 0, "the server must mint a trace id");
            trace_id
        }
        other => panic!("expected Accepted, got {other:?}"),
    };
    assert_ne!(trace_id, 0);

    assert!(matches!(client.exchange(&Request::Shutdown), Response::Bye));
    server_thread.join().expect("server thread exits cleanly");
}
