//! Property tests for the fleet router.
//!
//! Three contracts from the fleet design:
//!
//! 1. routing is a pure function of fleet state — two fleets in identical
//!    states route identically,
//! 2. a quarantined or open-breaker device never receives jobs while a
//!    healthy candidate exists,
//! 3. a fleet-routed result is bit-identical to a direct single-device
//!    `JobService` run on the chosen device with the same
//!    `(circuit, shots, seed)` — the DESIGN.md §7 determinism contract
//!    extended to routing.

use edm_fleet::backend::DeviceBackend;
use edm_fleet::fleet::{Fleet, FleetConfig, RoutingPolicy};
use edm_serve::dispatch::{BreakerConfig, BreakerState, ChaosBackend, RetryPolicy};
use edm_serve::queue::{JobRequest, Priority};
use edm_serve::service::{JobService, JobState, ServeConfig};
use proptest::prelude::*;
use qdevice::{presets, DeviceModel, Topology};
use std::cell::RefCell;
use std::sync::Arc;

fn ghz(n: u32) -> qcir::Circuit {
    let mut c = qcir::Circuit::new(n, n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c.measure_all();
    c
}

fn request(circuit: qcir::Circuit, shots: u64, seed: u64) -> JobRequest {
    JobRequest {
        circuit,
        shots,
        seed,
        priority: Priority::Normal,
    }
}

fn small_config() -> FleetConfig {
    FleetConfig {
        serve: ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
        ..FleetConfig::default()
    }
}

const DEVICE_SEED: u64 = 7;

fn three_device_fleet() -> Fleet<DeviceBackend> {
    Fleet::synthesize(
        &[
            (presets::melbourne14(), "melbourne14"),
            (presets::guadalupe16(), "guadalupe16"),
            (presets::tokyo20(), "tokyo20"),
        ],
        DEVICE_SEED,
        small_config(),
    )
}

/// The topology + synthesis seed the three-device fleet gave device `idx`
/// (mirrors `Fleet::synthesize`).
fn fleet_member(idx: usize) -> (Topology, u64) {
    let cycle = [
        presets::melbourne14(),
        presets::guadalupe16(),
        presets::tokyo20(),
    ];
    (cycle[idx].clone(), DEVICE_SEED + idx as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Two fleets built identically and fed identical submission streams
    /// stay in lockstep: same candidate order (device, score, health) and
    /// same routing decision for every job.
    #[test]
    fn identical_fleets_route_identically(
        specs in proptest::collection::vec((2u32..10, 1u64..256, 0u64..1_000_000), 1..4)
    ) {
        let left = three_device_fleet();
        let right = three_device_fleet();
        for (n, shots, seed) in specs {
            let circuit = ghz(n);
            prop_assert_eq!(left.candidates(&circuit), right.candidates(&circuit));
            let a = left.submit(request(circuit.clone(), shots, seed)).unwrap();
            let b = right.submit(request(circuit, shots, seed)).unwrap();
            prop_assert_eq!(a.device, b.device);
            left.process_all();
            right.process_all();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Routing never changes the outcome: the fleet's result for a job is
    /// byte-for-byte the result a standalone `JobService` on the routed
    /// device produces for the same `(circuit, shots, seed)`.
    #[test]
    fn fleet_results_are_bit_identical_to_direct_runs(
        n in 2u32..7,
        shots in 1u64..128,
        seed in 0u64..1_000_000,
    ) {
        thread_local! {
            static FLEET: Fleet<DeviceBackend> = three_device_fleet();
            static DIRECT: [RefCell<JobService<DeviceBackend>>; 3] = [0, 1, 2].map(|idx| {
                let (topology, synth_seed) = fleet_member(idx);
                let device = Arc::new(DeviceModel::synthesize(topology.clone(), synth_seed));
                RefCell::new(JobService::new(
                    topology,
                    device.calibration(),
                    DeviceBackend::new(Arc::clone(&device)),
                    small_config().serve,
                ))
            });
        }
        let (routed_device, fleet_result) = FLEET.with(|fleet| {
            let ticket = fleet.submit(request(ghz(n), shots, seed)).unwrap();
            fleet.process_all();
            match fleet.poll(ticket.id) {
                Some(JobState::Done(done)) => (ticket.device, done.result),
                other => panic!("fleet job did not finish: {other:?}"),
            }
        });
        let direct_result = DIRECT.with(|services| {
            let mut service = services[routed_device].borrow_mut();
            let id = service.submit(request(ghz(n), shots, seed)).unwrap();
            service.process_pending();
            match service.poll(id) {
                Some(JobState::Done(done)) => done.result.clone(),
                other => panic!("direct job did not finish: {other:?}"),
            }
        });
        prop_assert_eq!(fleet_result, direct_result);
    }
}

/// Two devices with the same preset and synthesis seed score identically,
/// so the tie-break prefers device 0 — until device 0's breaker opens,
/// after which device 1 must get every job while device 0 sits at the
/// failover tail.
#[test]
fn open_breaker_device_is_skipped_while_a_healthy_candidate_exists() {
    let mut config = small_config();
    // One injected failure trips the breaker, and no retries mask it.
    config.serve.retry = RetryPolicy {
        max_retries: 0,
        ..RetryPolicy::default()
    };
    config.serve.breaker = BreakerConfig {
        failure_threshold: 1,
        ..BreakerConfig::default()
    };
    let mut fleet: Fleet<ChaosBackend<DeviceBackend>> = Fleet::new(config);
    for idx in 0..2usize {
        let device = Arc::new(DeviceModel::synthesize(presets::melbourne14(), 7));
        let backend = DeviceBackend::new(Arc::clone(&device));
        // Device 0 fails every attempt; device 1 never fails.
        let fail_percent = if idx == 0 { 100 } else { 0 };
        fleet.add_device(
            format!("melbourne14#{idx}"),
            &device,
            ChaosBackend::new(backend, fail_percent, 0xC0FFEE),
        );
    }

    // Identical scores, so the deterministic tie-break picks device 0.
    let doomed = fleet.submit(request(ghz(3), 64, 1)).unwrap();
    assert_eq!(doomed.device, 0);
    fleet.process_all();
    assert!(matches!(fleet.poll(doomed.id), Some(JobState::Failed(_))));
    let status = fleet.device_status();
    assert_eq!(status[0].breaker, BreakerState::Open);
    assert_eq!(status[1].breaker, BreakerState::Closed);

    // Device 0 still scores best but is unhealthy: every subsequent job
    // must land on device 1.
    for seed in 2..8 {
        let candidates = fleet.candidates(&ghz(3));
        assert_eq!(candidates.len(), 2, "the sick device stays a candidate");
        assert!(!candidates.iter().find(|c| c.device == 0).unwrap().healthy);
        let ticket = fleet.submit(request(ghz(3), 64, seed)).unwrap();
        assert_eq!(ticket.device, 1, "open breaker must be routed around");
        fleet.process_all();
        assert!(matches!(fleet.poll(ticket.id), Some(JobState::Done(_))));
    }
}

/// Same two-identical-devices setup, but device 0 is sidelined by drift
/// quarantine instead of its breaker: a calibration update that worsens
/// one qubit's readout error past the drift threshold must divert all
/// traffic to device 1.
#[test]
fn quarantined_device_is_skipped_while_a_healthy_candidate_exists() {
    let mut fleet: Fleet<DeviceBackend> = Fleet::new(small_config());
    let device = Arc::new(DeviceModel::synthesize(presets::melbourne14(), 7));
    for idx in 0..2usize {
        fleet.add_device(
            format!("melbourne14#{idx}"),
            &device,
            DeviceBackend::new(Arc::clone(&device)),
        );
    }
    assert_eq!(fleet.route(&ghz(3)).unwrap().device, 0);

    // Re-issue device 0's calibration with qubit 0's readout error worsened
    // far past the watchdog's 0.05 drift threshold.
    fleet.update_calibration(
        0,
        device.calibration().clone().with_degraded_readout(0, 0.2),
    );

    let status = fleet.device_status();
    assert!(status[0].quarantined, "drift must quarantine device 0");
    assert!(!status[1].quarantined);

    for seed in 0..6 {
        let ticket = fleet.submit(request(ghz(3), 64, seed)).unwrap();
        assert_eq!(ticket.device, 1, "quarantined device must be routed around");
        fleet.process_all();
        assert!(matches!(fleet.poll(ticket.id), Some(JobState::Done(_))));
    }
}

/// The live answer-quality plane's acceptance contract: under
/// `RoutingPolicy::LiveIst`, a device whose *observed* answer quality
/// drifts below its calibration promise sheds traffic once its estimator
/// warms up — while before warmup routing is untouched, and the routed
/// result stays bit-identical to a direct single-device run (the
/// DESIGN.md §7 contract must survive quality-corrected routing).
#[test]
fn live_ist_sheds_traffic_after_warmup_and_results_stay_bit_identical() {
    let mut config = small_config();
    config.routing = RoutingPolicy::LiveIst;
    // Two identical devices: compile-time ESP can never separate them, so
    // any traffic shift is attributable to the live quality plane alone.
    let mut fleet: Fleet<DeviceBackend> = Fleet::new(config);
    let device = Arc::new(DeviceModel::synthesize(presets::melbourne14(), 7));
    for idx in 0..2usize {
        fleet.add_device(
            format!("melbourne14#{idx}"),
            &device,
            DeviceBackend::new(Arc::clone(&device)),
        );
    }
    assert_eq!(fleet.route(&ghz(3)).unwrap().device, 0, "tie-break");

    // Device 0 drifts: its calibration promises ESP ≈ 0.9, its answers
    // deliver a near-uniform 0.1. Feed observations one short of the
    // warmup threshold (default 5) — routing must not move yet.
    for _ in 0..4 {
        fleet.inject_quality_observation(0, 0.9, 0.1);
    }
    assert!(!fleet.device_quality(0).warmed_up);
    assert_eq!(
        fleet.route(&ghz(3)).unwrap().device,
        0,
        "pre-warmup observations must not bias routing"
    );

    // The fifth observation crosses warmup; the quality factor engages
    // and the degraded device loses the route.
    fleet.inject_quality_observation(0, 0.9, 0.1);
    assert!(fleet.device_quality(0).warmed_up);
    let candidates = fleet.candidates(&ghz(3));
    let score = |d: usize| candidates.iter().find(|c| c.device == d).unwrap().score;
    assert!(
        score(0) < score(1),
        "drift-degraded device must rank below its twin: {candidates:?}"
    );
    let ticket = fleet.submit(request(ghz(3), 96, 13)).unwrap();
    assert_eq!(
        ticket.device, 1,
        "traffic must shift off the degraded device"
    );
    fleet.process_all();
    let fleet_result = match fleet.poll(ticket.id) {
        Some(JobState::Done(done)) => done.result.clone(),
        other => panic!("fleet job did not finish: {other:?}"),
    };

    // Bit-identity survives: a standalone service on the routed device
    // with the same (circuit, shots, seed) produces the same result,
    // byte for byte — quality routing picks a device, never a different
    // execution.
    let mut direct = JobService::new(
        device.topology().clone(),
        device.calibration(),
        DeviceBackend::new(Arc::clone(&device)),
        small_config().serve,
    );
    let id = direct.submit(request(ghz(3), 96, 13)).unwrap();
    direct.process_pending();
    let direct_result = match direct.poll(id) {
        Some(JobState::Done(done)) => done.result.clone(),
        other => panic!("direct job did not finish: {other:?}"),
    };
    assert_eq!(fleet_result, direct_result);
}

/// Drift *below* the quarantine threshold must still move traffic: a
/// calibration update re-scores the device through `predicted_esp`, so a
/// uniformly (but not quarantinably) worsened device 0 loses the routing
/// tie to its previously identical twin on ESP alone — regression test
/// for `Fleet::update_calibration` forgetting to refresh routing state.
#[test]
fn calibration_update_rescores_routing_without_quarantine() {
    let mut fleet: Fleet<DeviceBackend> = Fleet::new(small_config());
    let device = Arc::new(DeviceModel::synthesize(presets::melbourne14(), 7));
    for idx in 0..2usize {
        fleet.add_device(
            format!("melbourne14#{idx}"),
            &device,
            DeviceBackend::new(Arc::clone(&device)),
        );
    }
    // Identical devices: the tie breaks to the lower index.
    assert_eq!(fleet.route(&ghz(3)).unwrap().device, 0);

    // Worsen every qubit's readout by 0.04 — each under the watchdog's
    // 0.05 per-qubit threshold, so nothing is quarantined — and push the
    // update through the fleet.
    let mut cal = device.calibration().clone();
    for q in 0..cal.num_qubits() {
        cal = cal.with_degraded_readout(q, 0.04);
    }
    fleet.update_calibration(0, cal);

    let status = fleet.device_status();
    assert!(
        !status[0].quarantined && !status[1].quarantined,
        "sub-threshold drift must not quarantine anything"
    );
    let candidates = fleet.candidates(&ghz(3));
    let score = |d: usize| candidates.iter().find(|c| c.device == d).unwrap();
    assert!(score(0).healthy && score(1).healthy);
    assert!(
        score(0).score < score(1).score,
        "drifted device must rank below its twin: {candidates:?}"
    );

    let ticket = fleet.submit(request(ghz(3), 64, 1)).unwrap();
    assert_eq!(
        ticket.device, 1,
        "ESP routing must shift off the drifted device"
    );
    fleet.process_all();
    assert!(matches!(fleet.poll(ticket.id), Some(JobState::Done(_))));
}
