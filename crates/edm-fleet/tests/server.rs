//! End-to-end tests for the sharded non-blocking connection layer: real
//! TCP clients against a running [`FleetServer`], exercising frame
//! reassembly across split writes, reject-with-reason for malformed
//! frames, concurrent submissions, per-device fleet status, and shutdown.

use edm_fleet::fleet::{Fleet, FleetConfig};
use edm_fleet::server::{FleetServer, ServerConfig};
use edm_serve::protocol::{Request, Response};
use edm_serve::queue::Priority;
use edm_serve::service::ServeConfig;
use qdevice::presets;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn ghz_qasm() -> String {
    let mut c = qcir::Circuit::new(3, 3);
    c.h(0).cx(0, 1).cx(1, 2).measure_all();
    qcir::qasm::to_qasm(&c)
}

fn spawn_server() -> (String, std::thread::JoinHandle<()>) {
    let fleet = Fleet::synthesize(
        &[
            (presets::melbourne14(), "melbourne14"),
            (presets::tokyo20(), "tokyo20"),
        ],
        7,
        FleetConfig {
            serve: ServeConfig {
                threads: 2,
                ..ServeConfig::default()
            },
            ..FleetConfig::default()
        },
    );
    let config = ServerConfig {
        shards: 2,
        max_frame: 4096,
        ..ServerConfig::default()
    };
    let server = FleetServer::bind(fleet, "127.0.0.1:0", config).expect("bind fleet server");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to fleet server");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("write request bytes");
        self.writer.flush().expect("flush request bytes");
    }

    fn recv(&mut self) -> Response {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection unexpectedly");
        serde_json::from_str(&line).expect("response parses")
    }

    fn exchange(&mut self, request: &Request) -> Response {
        let mut line = serde_json::to_string(request).expect("request serializes");
        line.push('\n');
        self.send_raw(line.as_bytes());
        self.recv()
    }

    fn submit(&mut self, shots: u64, seed: u64) -> u64 {
        match self.exchange(&Request::Submit {
            qasm: ghz_qasm(),
            shots,
            seed,
            priority: Priority::Normal,
            trace_id: 0,
            parent_span: 0,
        }) {
            Response::Accepted { id, .. } => id,
            other => panic!("expected Accepted, got {other:?}"),
        }
    }

    fn await_finished(&mut self, id: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            match self.exchange(&Request::Poll { id }) {
                Response::Finished { .. } => return,
                Response::Queued { .. } => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "job {id} never finished"
                    );
                    std::thread::sleep(Duration::from_millis(5));
                }
                other => panic!("expected Finished/Queued for {id}, got {other:?}"),
            }
        }
    }
}

#[test]
fn clients_submit_over_tcp_and_malformed_frames_are_rejected_with_reasons() {
    let (addr, server) = spawn_server();

    // A request split across two TCP writes must reassemble into one frame.
    let mut split = Client::connect(&addr);
    let mut line = serde_json::to_string(&Request::Submit {
        qasm: ghz_qasm(),
        shots: 64,
        seed: 1,
        priority: Priority::Normal,
        trace_id: 0,
        parent_span: 0,
    })
    .unwrap();
    line.push('\n');
    let bytes = line.as_bytes();
    let cut = bytes.len() / 2;
    split.send_raw(&bytes[..cut]);
    std::thread::sleep(Duration::from_millis(20));
    split.send_raw(&bytes[cut..]);
    let split_id = match split.recv() {
        Response::Accepted { id, .. } => id,
        other => panic!("split write should still submit, got {other:?}"),
    };

    // Several clients submitting concurrently: unique ids, all finish.
    let mut clients: Vec<Client> = (0..4).map(|_| Client::connect(&addr)).collect();
    let mut ids = vec![split_id];
    for (i, client) in clients.iter_mut().enumerate() {
        ids.push(client.submit(64, 100 + i as u64));
    }
    let distinct: std::collections::BTreeSet<u64> = ids.iter().copied().collect();
    assert_eq!(distinct.len(), ids.len(), "fleet ids must be unique");
    split.await_finished(split_id);
    for (i, client) in clients.iter_mut().enumerate() {
        client.await_finished(ids[i + 1]);
    }

    // Malformed frames are answered, not dropped: the connection stays
    // usable afterwards.
    let mut bad = Client::connect(&addr);
    bad.send_raw(b"{\"this is\": not json}\n");
    match bad.recv() {
        Response::Error { reason } => assert!(
            reason.contains("bad request line"),
            "unexpected reason: {reason}"
        ),
        other => panic!("expected Error for bad JSON, got {other:?}"),
    }
    bad.send_raw(b"\xff\xfe\xfd\n");
    match bad.recv() {
        Response::Error { reason } => assert!(
            reason.contains("not valid UTF-8"),
            "unexpected reason: {reason}"
        ),
        other => panic!("expected Error for invalid UTF-8, got {other:?}"),
    }
    // An unterminated 8 KiB blob overflows the 4 KiB frame bound; the
    // framer resyncs at the next newline and the connection keeps working.
    let mut oversized = vec![b'x'; 8 * 1024];
    oversized.push(b'\n');
    bad.send_raw(&oversized);
    match bad.recv() {
        Response::Error { reason } => assert!(
            reason.contains("frame too long"),
            "unexpected reason: {reason}"
        ),
        other => panic!("expected Error for oversized frame, got {other:?}"),
    }
    let survivor = bad.submit(32, 9);
    bad.await_finished(survivor);

    // FleetStats reports both devices, in index order, with every job
    // accounted for somewhere in the fleet.
    match bad.exchange(&Request::FleetStats) {
        Response::FleetStats { devices } => {
            assert_eq!(devices.len(), 2);
            assert_eq!(devices[0].device, 0);
            assert_eq!(devices[1].device, 1);
            assert!(devices[0].name.starts_with("melbourne14#"));
            assert!(devices[1].name.starts_with("tokyo20#"));
            let submitted: u64 = devices.iter().map(|d| d.stats.submitted).sum();
            assert_eq!(submitted, ids.len() as u64 + 1);
        }
        other => panic!("expected FleetStats, got {other:?}"),
    }
    match bad.exchange(&Request::Stats) {
        Response::Stats { stats } => {
            assert_eq!(stats.submitted, ids.len() as u64 + 1);
            assert_eq!(stats.completed, ids.len() as u64 + 1);
        }
        other => panic!("expected Stats, got {other:?}"),
    }

    // Any client's Shutdown stops the whole server.
    assert!(matches!(bad.exchange(&Request::Shutdown), Response::Bye));
    server.join().expect("server thread exits cleanly");
}

#[test]
fn unknown_ids_and_blank_lines_are_handled() {
    let (addr, server) = spawn_server();
    let mut client = Client::connect(&addr);
    // Blank lines are ignored, not answered: the next real request gets
    // the next response.
    client.send_raw(b"\n\n");
    assert!(matches!(
        client.exchange(&Request::Poll { id: 424242 }),
        Response::Unknown { id: 424242 }
    ));
    assert!(matches!(client.exchange(&Request::Shutdown), Response::Bye));
    server.join().expect("server thread exits cleanly");
}
