//! `edm-cli` — a small command-line front end for the EDM reproduction.
//!
//! ```text
//! edm-cli draw <circuit.qasm>                 render an ASCII diagram
//! edm-cli transpile <circuit.qasm> [--device NAME] [--mapper NAME] [--seed N]
//!                                             map onto a simulated device
//! edm-cli run <circuit.qasm> [--device NAME] [--shots N] [--seed N]
//!                [--threads N] [--profile]    baseline vs EDM vs WEDM
//! edm-cli run <circuit.qasm> --connect ADDR [--shots N] [--seed N]
//!                [--trace-out FILE]           submit to a fleet server
//! edm-cli trace <job-id> --connect ADDR       print a job's span timeline
//! edm-cli stats --connect ADDR [--watch N]    per-device fleet status table
//! edm-cli map (<circuit.qasm> | --bench NAME) [--device NAME] [--mapper NAME]
//!                [--ensemble K] [--seed N]    enumerate a diverse top-K pool
//! edm-cli device [--device NAME] [--seed N]   dump the device model as JSON
//! ```
//!
//! Circuits are OpenQASM 2.0 in the subset `qcir::qasm` understands (the
//! same subset it emits). `--device` takes any `qdevice::presets` name
//! (melbourne14 … eagle127); `--mapper` picks the embedding engine
//! (auto | exhaustive | filtered).

use edm_core::{
    metrics, Backend, Controller, ControllerConfig, ControllerEvent, EdmError, EdmRunner,
    EnsembleConfig, MemberObservation, ProbDist, RunHealth, ShotAllocation,
};
use edm_serve::{exitcode, validate};
use qcir::{draw, qasm, Circuit};
use qdevice::mapper::SearchOutcome;
use qdevice::{persist, presets, DeviceModel, Topology};
use qmap::{MapperSelection, Transpiler};
use qsim::{ideal, NoisySimulator};
use std::process::ExitCode;

/// A command failure carrying the exit code its class maps to.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    /// Exit 2: the command line could not be understood.
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            code: exitcode::USAGE,
            message: message.into(),
        }
    }

    /// Exit 65: an input file exists but is unusable.
    fn data(message: impl Into<String>) -> Self {
        CliError {
            code: exitcode::DATA,
            message: message.into(),
        }
    }

    /// Exit 1: everything else.
    fn other(message: impl Into<String>) -> Self {
        CliError {
            code: exitcode::FAILURE,
            message: message.into(),
        }
    }

    /// Exit 75 for a transient backend failure (rerunning may succeed),
    /// exit 1 for deterministic pipeline errors.
    fn run(e: EdmError) -> Self {
        let code = match &e {
            EdmError::Sim(sim) => exitcode::for_sim_error(sim),
            _ => exitcode::FAILURE,
        };
        CliError {
            code,
            message: e.to_string(),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(exitcode::USAGE);
    };
    let result = match command.as_str() {
        "draw" => cmd_draw(&args[1..]),
        "transpile" => cmd_transpile(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "map" => cmd_map(&args[1..]),
        "device" => cmd_device(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command '{other}'\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}

const USAGE: &str = "usage:
  edm-cli draw <circuit.qasm>
  edm-cli transpile <circuit.qasm> [--device NAME] [--mapper NAME] [--seed N]
  edm-cli run <circuit.qasm> [--device NAME] [--shots N] [--seed N]
             [--threads N] [--profile] [--adaptive-controller] [--rounds N]
  edm-cli run <circuit.qasm> --connect ADDR [--shots N] [--seed N]
             [--trace-out FILE]
  edm-cli trace <job-id> --connect ADDR
  edm-cli stats --connect ADDR [--watch N]
  edm-cli map (<circuit.qasm> | --bench NAME) [--device NAME] [--mapper NAME]
             [--ensemble K] [--seed N]
  edm-cli device [--device NAME] [--seed N]

device / mapper options:
  --device NAME preset topology to synthesize (default: melbourne14).
                Presets: melbourne14 guadalupe16 tokyo20 falcon27
                hummingbird65 eagle127
  --mapper NAME embedding engine: auto (exhaustive up to 20 qubits,
                filtered above — the default), exhaustive (full VF2),
                or filtered (budgeted depth-limited FDLS search)

map options:
  --bench NAME  use a registry workload instead of a .qasm file: a Table-1
                name (bv-6, qaoa-5, ...) or a scaling instance
                (qft-N, ghz-N, qaoa-ring-N)
  --ensemble K  pool size to diversify down to (default: 4)

run options:
  --threads N   cap execution worker threads, N >= 1 (default: all cores;
                results are identical for every N — threads only change
                speed). With --connect the server picks its own thread
                count (same validation, same results either way)
  --profile     enable telemetry for this run and print a per-stage timing
                table (calls, total ms, % of wall) after the results
  --connect ADDR
                submit to a running edm-serve/edm-fleet JSON-lines server
                at ADDR (e.g. 127.0.0.1:7878) instead of running locally,
                then poll until the job finishes and print its summary
  --adaptive-controller
                run the shot budget in rounds through the closed-loop
                feedback controller: an enlarged mapping pool is compiled
                once, and between rounds the controller reweights the WEDM
                merge and swaps persistently underperforming members for
                spares; prints per-round health and decisions
  --rounds N    feedback rounds for --adaptive-controller, N >= 2
                (default: 4)
  --trace-out FILE
                with --connect: also append this client's own spans to FILE
                as JSON lines (the server keeps its half of the trace; see
                edm-cli trace)

trace options:
  <job-id>      the id `run --connect` printed in its `accepted:` line
  --connect ADDR
                the server that accepted the job; prints every span the
                server recorded for the job's trace as an indented tree
                with per-span durations

stats options:
  --connect ADDR
                server to query; prints one row per fleet device (queue
                depth, breaker, quarantine, live IST, ESP gap)
  --watch N     refresh every N seconds until interrupted (N >= 1);
                redraws in place when stdout is a terminal

exit codes:
  0   success
  1   unclassified failure
  2   usage error (bad flags / arguments)
  65  data error (missing or unparseable circuit file)
  75  transient backend failure; rerunning may succeed";

fn flag(args: &[String], name: &str, default: u64) -> Result<u64, CliError> {
    opt_flag(args, name).map(|v| v.unwrap_or(default))
}

fn opt_flag(args: &[String], name: &str) -> Result<Option<u64>, CliError> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .map(Some)
            .ok_or_else(|| CliError::usage(format!("{name} expects an integer"))),
        None => Ok(None),
    }
}

fn text_flag(args: &[String], name: &str) -> Result<Option<String>, CliError> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| CliError::usage(format!("{name} expects a value"))),
        None => Ok(None),
    }
}

/// `--device NAME`, defaulting to the paper's IBMQ-14 stand-in.
fn device_flag(args: &[String]) -> Result<(Topology, String), CliError> {
    let name = text_flag(args, "--device")?.unwrap_or_else(|| "melbourne14".into());
    let topology = presets::by_name(&name).ok_or_else(|| {
        CliError::usage(format!(
            "--device: unknown preset '{name}' (expected one of: {})",
            presets::NAMES.join(", ")
        ))
    })?;
    Ok((topology, name))
}

/// `--mapper NAME`, defaulting to size-based auto selection.
fn mapper_flag(args: &[String]) -> Result<MapperSelection, CliError> {
    match text_flag(args, "--mapper")? {
        Some(name) => MapperSelection::parse(&name).ok_or_else(|| {
            CliError::usage(format!(
                "--mapper: unknown engine '{name}' (expected auto, exhaustive, or filtered)"
            ))
        }),
        None => Ok(MapperSelection::Auto),
    }
}

fn load_circuit(args: &[String]) -> Result<Circuit, CliError> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && a.ends_with(".qasm"))
        .ok_or_else(|| CliError::usage("expected a .qasm file argument"))?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError::data(format!("{path}: {e}")))?;
    qasm::parse(&text).map_err(|e| CliError::data(format!("{path}: {e}")))
}

fn cmd_draw(args: &[String]) -> Result<(), CliError> {
    let circuit = load_circuit(args)?;
    print!("{}", draw::draw(&circuit));
    Ok(())
}

fn cmd_transpile(args: &[String]) -> Result<(), CliError> {
    let circuit = load_circuit(args)?;
    let seed = flag(args, "--seed", 42)?;
    let (topology, device_name) = device_flag(args)?;
    let mapper = mapper_flag(args)?;
    let device = DeviceModel::synthesize(topology, seed);
    let cal = device.calibration();
    let out = Transpiler::new(device.topology(), &cal)
        .with_mapper(mapper)
        .transpile(&circuit)
        .map_err(|e| CliError::other(e.to_string()))?;
    println!(
        "device: {device_name} ({} qubits)  mapper: {}",
        device.topology().num_qubits(),
        mapper.describe(device.topology())
    );
    println!("initial layout: {}", out.initial_layout);
    println!("swaps inserted: {}", out.swap_count);
    println!("compile-time ESP: {:.4}", out.esp);
    println!("\n{}", qasm::to_qasm(&out.physical));
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let circuit = load_circuit(args)?;
    let shots = validate::shots(flag(args, "--shots", 16_384)?)
        .map_err(|e| CliError::usage(format!("--shots: {e}")))?;
    let seed = flag(args, "--seed", 42)?;
    // Absent = auto (all cores). Any value gives bit-identical results; the
    // flag exists to bound CPU usage, not to pick an RNG schedule.
    let threads = validate::threads(opt_flag(args, "--threads")?)
        .map_err(|e| CliError::usage(format!("--threads: {e}")))?;
    let profile = args.iter().any(|a| a == "--profile");
    let (topology, _) = device_flag(args)?;
    let mapper = mapper_flag(args)?;
    if circuit.count_measure() == 0 {
        return Err(CliError::data(
            "circuit has no measurements; nothing to run",
        ));
    }
    // --threads was validated above even for remote runs (catch bad values
    // before touching the network); the server picks its own thread count.
    if let Some(addr) = text_flag(args, "--connect")? {
        let trace_out = text_flag(args, "--trace-out")?;
        return cmd_run_remote(&addr, &circuit, shots, seed, trace_out.as_deref());
    }
    if args.iter().any(|a| a == "--adaptive-controller") {
        let rounds = flag(args, "--rounds", 4)?;
        if rounds < 2 {
            return Err(CliError::usage("--rounds must be at least 2"));
        }
        return cmd_run_adaptive(&circuit, shots, seed, rounds, threads, topology, mapper);
    }
    if profile {
        edm_telemetry::set_enabled(true);
    }
    let wall_start = std::time::Instant::now();
    let correct = {
        let _span = edm_telemetry::trace::span("ideal_reference");
        ideal::outcome(&circuit).map_err(|e| CliError::other(e.to_string()))?
    };
    let device;
    let cal;
    {
        let _span = edm_telemetry::trace::span("device_setup");
        device = DeviceModel::synthesize(topology, seed);
        cal = device.calibration();
    }
    let transpiler = Transpiler::new(device.topology(), &cal).with_mapper(mapper);
    let backend = NoisySimulator::from_device(&device);
    let mut runner = EdmRunner::new(&transpiler, &backend, EnsembleConfig::default());
    if let Some(threads) = threads {
        runner = runner.with_threads(threads);
    }

    let baseline = runner
        .run_baseline(&circuit, shots, seed)
        .map_err(CliError::run)?;
    let result = runner.run(&circuit, shots, seed).map_err(CliError::run)?;
    let wall = wall_start.elapsed();

    if let RunHealth::Degraded {
        failed_members,
        quorum,
    } = &result.health
    {
        println!(
            "DEGRADED: {} member(s) failed permanently; merged over {} survivor(s) (quorum {})",
            failed_members.len(),
            result.members.len(),
            quorum
        );
    }
    let width = circuit.num_clbits();
    println!(
        "ideal (correct) answer: {}",
        qsim::counts::format_bitstring(correct, width)
    );
    println!(
        "baseline: PST {:.4}  IST {:.3}",
        metrics::pst(&baseline.dist, correct),
        metrics::ist(&baseline.dist, correct)
    );
    println!(
        "EDM:      PST {:.4}  IST {:.3}",
        metrics::pst(&result.edm, correct),
        result.ist_edm(correct)
    );
    println!(
        "WEDM:     PST {:.4}  IST {:.3}",
        metrics::pst(&result.wedm, correct),
        result.ist_wedm(correct)
    );
    for (i, m) in result.members.iter().enumerate() {
        println!(
            "member {i}: qubits {:?}  ESP {:.3}  PST {:.4}",
            m.member.qubits,
            m.member.esp,
            metrics::pst(&m.dist, correct)
        );
    }
    if profile {
        print_profile(wall);
    }
    Ok(())
}

/// `run --adaptive-controller`: the closed-loop local mode. Compiles one
/// enlarged mapping pool (the usual ensemble plus the controller's spare
/// budget), then spends the shot budget in rounds; after each round the
/// controller scores every active member against its predicted ESP share,
/// reweights the WEDM merge, and swaps persistent underperformers for the
/// next-ranked spare. The final answer merges the per-round WEDM
/// distributions weighted by their shot counts.
fn cmd_run_adaptive(
    circuit: &Circuit,
    shots: u64,
    seed: u64,
    rounds: u64,
    threads: Option<usize>,
    topology: Topology,
    mapper: MapperSelection,
) -> Result<(), CliError> {
    let correct = ideal::outcome(circuit).map_err(|e| CliError::other(e.to_string()))?;
    let width = circuit.num_clbits();
    let device = DeviceModel::synthesize(topology, seed);
    let cal = device.calibration();
    let transpiler = Transpiler::new(device.topology(), &cal).with_mapper(mapper);
    let backend = NoisySimulator::from_device(&device);
    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });

    let base = EnsembleConfig::default();
    let controller_config = ControllerConfig::default();
    let pool_config = EnsembleConfig {
        size: base.size + controller_config.spares,
        ..base
    };
    let pool =
        edm_core::build_ensemble(&transpiler, circuit, &pool_config).map_err(CliError::run)?;
    let footprints: Vec<Vec<u32>> = pool.iter().map(|m| m.qubits.clone()).collect();
    let active_len = base.size.min(pool.len());
    let mut controller = Controller::new(controller_config, pool.len(), active_len);

    let round_shots = shots / rounds;
    if round_shots < active_len as u64 {
        return Err(CliError::usage(format!(
            "--shots {shots} over {rounds} rounds leaves fewer shots per round than the \
             {active_len} ensemble members"
        )));
    }
    let threshold = base
        .uniformity_filter
        .unwrap_or(edm_core::filter::DEFAULT_RSD_THRESHOLD);

    println!(
        "ideal (correct) answer: {}",
        qsim::counts::format_bitstring(correct, width)
    );
    println!(
        "pool: {} mapping(s) ({} active + {} spare(s)), {} round(s) of {} shot(s)",
        pool.len(),
        active_len,
        pool.len() - active_len,
        rounds,
        round_shots
    );

    let mut round_dists: Vec<ProbDist> = Vec::new();
    let mut round_masses: Vec<f64> = Vec::new();
    for round in 0..rounds {
        for event in controller.maintain(&footprints, None) {
            if let ControllerEvent::Swap {
                slot,
                out_member,
                in_member,
                reason,
                ..
            } = event
            {
                println!("round {round}: swap slot {slot}: member {out_member} -> {in_member} ({reason:?})");
            }
        }
        let members: Vec<edm_core::EnsembleMember> = controller
            .active()
            .iter()
            .map(|&i| pool[i].clone())
            .collect();
        let planned = members.len();
        // Each round forks its own seed, so rounds are independent trials
        // and the whole run stays reproducible from the one CLI seed.
        let plan = plan_round(members, round_shots, qsim::rngstream::fork(seed, round))?;
        let raw = backend.execute_batch(&plan.jobs(), threads);
        let mut result =
            edm_core::assemble_result(plan.members, raw, &base).map_err(CliError::run)?;

        let failed: std::collections::BTreeMap<usize, f64> = match &result.health {
            RunHealth::Degraded { failed_members, .. } => failed_members
                .iter()
                .map(|f| (f.index, f.member.esp))
                .collect(),
            RunHealth::Full => Default::default(),
        };
        let mut observations = Vec::with_capacity(planned);
        let mut survivors = result.members.iter().zip(&result.weights);
        for slot in 0..planned {
            if let Some(&esp) = failed.get(&slot) {
                observations.push(MemberObservation {
                    esp,
                    informative: false,
                    realized_weight: 0.0,
                    failed: true,
                });
            } else if let Some((run, &weight)) = survivors.next() {
                observations.push(MemberObservation {
                    esp: run.member.esp,
                    informative: edm_core::filter::is_informative(&run.dist, threshold),
                    realized_weight: weight,
                    failed: false,
                });
            }
        }
        if observations.len() == planned {
            let assessment = controller.observe(&observations);
            if assessment.reweighted {
                // Slot weights map onto survivors in plan order; renormalize
                // over the survivors actually merged.
                let adjusted: Vec<f64> = (0..planned)
                    .filter(|slot| !failed.contains_key(slot))
                    .map(|slot| assessment.weights[slot])
                    .collect();
                let total: f64 = adjusted.iter().sum();
                if adjusted.len() == result.members.len() && total.is_finite() && total > 0.0 {
                    let adjusted: Vec<f64> = adjusted.iter().map(|w| w / total).collect();
                    let dists: Vec<ProbDist> =
                        result.members.iter().map(|m| m.dist.clone()).collect();
                    result.wedm = ProbDist::merge_weighted(&dists, &adjusted);
                    result.weights = adjusted;
                }
            }
        }

        let health: Vec<String> = controller
            .health()
            .iter()
            .map(|h| format!("{h:.2}"))
            .collect();
        println!(
            "round {round}: WEDM PST {:.4}  health [{}]",
            metrics::pst(&result.wedm, correct),
            health.join(" ")
        );
        round_masses.push(result.members.iter().map(|m| m.counts.shots() as f64).sum());
        round_dists.push(result.wedm);
    }

    let final_wedm = ProbDist::merge_weighted(&round_dists, &round_masses);
    println!(
        "adaptive WEDM: PST {:.4}  IST {:.3}",
        metrics::pst(&final_wedm, correct),
        metrics::ist(&final_wedm, correct)
    );
    println!(
        "controller: {} swap(s), {} reweight(s) over {} round(s)",
        controller.swaps(),
        controller.reweights(),
        controller.runs()
    );
    Ok(())
}

/// Plans one adaptive round, mapping config errors to usage exits.
fn plan_round(
    members: Vec<edm_core::EnsembleMember>,
    shots: u64,
    seed: u64,
) -> Result<edm_core::RunPlan, CliError> {
    edm_core::plan_run(members, shots, seed, ShotAllocation::Uniform).map_err(CliError::run)
}

/// `map`: transpiles a workload onto the chosen preset and prints the
/// diversified top-K mapping pool — the EDM ensemble before any shots are
/// spent. This is the command the CI mapping smoke test drives: it proves
/// the selected engine can produce a ranked, diverse pool on the large
/// heavy-hex presets within its budget.
fn cmd_map(args: &[String]) -> Result<(), CliError> {
    let circuit = match text_flag(args, "--bench")? {
        Some(name) => qbench::registry::by_name(&name)
            .map(|b| b.circuit)
            .or_else(|| qbench::registry::scaling_by_name(&name))
            .ok_or_else(|| {
                CliError::usage(format!(
                    "--bench: unknown workload '{name}' (Table-1 name or qft-N / ghz-N / qaoa-ring-N)"
                ))
            })?,
        None => load_circuit(args)?,
    };
    let seed = flag(args, "--seed", 42)?;
    let size = flag(args, "--ensemble", 4)? as usize;
    let (topology, device_name) = device_flag(args)?;
    let mapper = mapper_flag(args)?;
    let device = DeviceModel::synthesize(topology, seed);
    let cal = device.calibration();
    let transpiler = Transpiler::new(device.topology(), &cal).with_mapper(mapper);

    let out = transpiler
        .transpile(&circuit)
        .map_err(|e| CliError::other(e.to_string()))?;
    let config = EnsembleConfig {
        size,
        // Keep every candidate the engine can reach: `map` reports the
        // pool itself, so the §3.2 ESP cutoff would only hide members.
        min_esp_ratio: 0.0,
        ..EnsembleConfig::default()
    };
    let (members, outcome) =
        edm_core::diversify_detailed(&transpiler, &out.physical, &config).map_err(CliError::run)?;

    println!(
        "device: {device_name} ({} qubits)  mapper: {}",
        device.topology().num_qubits(),
        mapper.describe(device.topology())
    );
    println!(
        "circuit: {} logical qubits, {} swaps inserted, baseline ESP {:.4}",
        circuit.num_qubits(),
        out.swap_count,
        out.esp
    );
    match outcome {
        SearchOutcome::Complete => println!("search: complete"),
        SearchOutcome::Truncated { explored } => {
            println!("search: truncated (budget hit after {explored} node expansions)");
        }
    }
    for (i, m) in members.iter().enumerate() {
        println!("member {i}: qubits {:?}  ESP {:.4}", m.qubits, m.esp);
    }
    Ok(())
}

/// Exit 75: the server may just not be up yet.
fn transient(message: String) -> CliError {
    CliError {
        code: exitcode::TRANSIENT,
        message,
    }
}

/// A line-oriented protocol client over one TCP connection, shared by the
/// `run --connect`, `trace`, and `stats` commands.
struct LineClient {
    addr: String,
    reader: std::io::BufReader<std::net::TcpStream>,
    writer: std::net::TcpStream,
}

impl LineClient {
    fn connect(addr: &str) -> Result<Self, CliError> {
        let stream = std::net::TcpStream::connect(addr)
            .map_err(|e| transient(format!("cannot connect to {addr}: {e}")))?;
        stream.set_nodelay(true).ok();
        let reader = std::io::BufReader::new(
            stream
                .try_clone()
                .map_err(|e| transient(format!("{addr}: {e}")))?,
        );
        Ok(LineClient {
            addr: addr.to_string(),
            reader,
            writer: stream,
        })
    }

    fn exchange(
        &mut self,
        request: &edm_serve::protocol::Request,
    ) -> Result<edm_serve::protocol::Response, CliError> {
        use std::io::{BufRead, Write};
        let addr = &self.addr;
        let line = serde_json::to_string(request)
            .map_err(|e| CliError::other(format!("encode request: {e}")))?;
        writeln!(self.writer, "{line}").map_err(|e| transient(format!("{addr}: write: {e}")))?;
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(0) => Err(transient(format!("{addr}: server closed the connection"))),
            Ok(_) => serde_json::from_str(&response)
                .map_err(|e| CliError::other(format!("{addr}: bad response: {e}"))),
            Err(e) => Err(transient(format!("{addr}: read: {e}"))),
        }
    }
}

/// `run --connect`: submits the circuit to a JSON-lines server (an
/// `edm-fleet` front end or a line-oriented `edm-serve` peer), polls the
/// returned id until the job reaches a terminal state, and prints the
/// summary. The submission carries this client's freshly minted trace id
/// and root span, so the server's shard, device-service, and pool-slice
/// spans all land in one cross-process trace (`edm-cli trace <id>` walks
/// it back). Connection problems exit 75 (transient — the server may just
/// not be up yet); a server-side rejection or job failure exits 65.
fn cmd_run_remote(
    addr: &str,
    circuit: &Circuit,
    shots: u64,
    seed: u64,
    trace_out: Option<&str>,
) -> Result<(), CliError> {
    use edm_serve::protocol::{Request, Response};

    // The client is the trace's origin: it mints the id and owns the root
    // span, exactly like an edge gateway in a conventional tracing setup.
    edm_telemetry::set_enabled(true);
    if let Some(path) = trace_out {
        edm_telemetry::trace::set_trace_file(
            path,
            edm_telemetry::trace::DEFAULT_TRACE_FILE_MAX_BYTES,
        )
        .map_err(|e| CliError::other(format!("--trace-out {path}: {e}")))?;
    }
    let trace_id = edm_telemetry::trace::next_trace_id();
    let _trace = edm_telemetry::trace::with_trace(trace_id);
    let client_span = edm_telemetry::trace::span("client_run");
    let parent_span = client_span.id();

    let mut client = LineClient::connect(addr)?;
    let id = match client.exchange(&Request::Submit {
        qasm: qasm::to_qasm(circuit),
        shots,
        seed,
        priority: edm_serve::queue::Priority::Normal,
        trace_id,
        parent_span,
    })? {
        Response::Accepted { id, trace_id } => {
            println!("accepted: id {id}  trace {trace_id:#018x}");
            id
        }
        Response::Rejected { reason } => {
            return Err(CliError::data(format!("server rejected the job: {reason}")))
        }
        other => return Err(CliError::other(format!("unexpected response: {other:?}"))),
    };

    let outcome = loop {
        match client.exchange(&Request::Poll { id })? {
            Response::Queued { .. } => std::thread::sleep(std::time::Duration::from_millis(20)),
            Response::Finished { summary, .. } => {
                println!(
                    "finished: {} member(s), {} shot(s), {} ms",
                    summary.members, summary.shots, summary.latency_ms
                );
                if summary.degraded {
                    println!(
                        "DEGRADED: {} member(s) failed permanently",
                        summary.failed_members
                    );
                }
                println!(
                    "top outcome: {}  p = {:.4}",
                    summary.top_outcome, summary.top_probability
                );
                // Surface adaptive-controller activity without making the
                // user scrape Prometheus; servers without the controller
                // report zeros and print nothing.
                if let Ok(Response::Stats { stats }) = client.exchange(&Request::Stats) {
                    if stats.controller_swaps > 0
                        || stats.controller_reweights > 0
                        || stats.controller_recompiles > 0
                    {
                        println!(
                            "controller: {} swap(s), {} reweight(s), {} recompile(s)",
                            stats.controller_swaps,
                            stats.controller_reweights,
                            stats.controller_recompiles
                        );
                    }
                }
                break Ok(());
            }
            Response::Failed { reason, .. } => {
                break Err(CliError::data(format!(
                    "job failed on the server: {reason}"
                )))
            }
            other => break Err(CliError::other(format!("unexpected response: {other:?}"))),
        }
    };
    // Close the root span so it reaches the recorder (and the export file)
    // before the process exits.
    drop(client_span);
    if trace_out.is_some() {
        edm_telemetry::trace::flush_trace_file();
    }
    outcome
}

/// `trace <job-id> --connect ADDR`: fetches every span the server recorded
/// for the job's trace and prints them as an indented call tree. Spans
/// whose parent lives in another process (the client's root span, for a
/// job submitted by `run --connect`) print at the top level with their
/// remote parent noted.
fn cmd_trace(args: &[String]) -> Result<(), CliError> {
    use edm_serve::protocol::{Request, Response, SpanInfo};

    let id: u64 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::usage("trace expects a job id"))?
        .parse()
        .map_err(|_| CliError::usage("trace expects a numeric job id"))?;
    let addr = text_flag(args, "--connect")?
        .ok_or_else(|| CliError::usage("trace requires --connect ADDR"))?;

    let mut client = LineClient::connect(&addr)?;
    let (trace_id, spans) = match client.exchange(&Request::Trace { id })? {
        Response::Trace {
            trace_id, spans, ..
        } => (trace_id, spans),
        Response::Unknown { .. } => {
            return Err(CliError::data(format!("server does not know job {id}")))
        }
        other => return Err(CliError::other(format!("unexpected response: {other:?}"))),
    };

    println!(
        "job {id}: trace {trace_id:#018x}, {} span(s) on the server",
        spans.len()
    );
    if spans.is_empty() {
        println!("(no spans retained — was the server started with telemetry enabled?)");
        return Ok(());
    }
    // Reconstruct the call tree: spans arrive in completion order, ids are
    // allocation-ordered, so sorting children by id approximates start
    // order without needing wall-clock timestamps.
    let known: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut children: std::collections::BTreeMap<u64, Vec<&SpanInfo>> =
        std::collections::BTreeMap::new();
    let mut roots: Vec<&SpanInfo> = Vec::new();
    for span in &spans {
        // A self-parented span is a root: its declared parent id is a
        // cross-process collision, not a real edge.
        if span.parent_id != span.id && known.contains(&span.parent_id) {
            children.entry(span.parent_id).or_default().push(span);
        } else {
            roots.push(span);
        }
    }
    for list in children.values_mut() {
        list.sort_by_key(|s| s.id);
    }
    roots.sort_by_key(|s| s.id);

    fn print_subtree(
        span: &SpanInfo,
        depth: usize,
        children: &std::collections::BTreeMap<u64, Vec<&SpanInfo>>,
        visited: &mut std::collections::BTreeSet<u64>,
    ) {
        // Colliding ids could forge a parent cycle; print each span once.
        if !visited.insert(span.id) {
            return;
        }
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{}", span.name);
        println!(
            "{label:<28} {:>10.3} ms  span {}",
            span.elapsed_us as f64 / 1000.0,
            span.id
        );
        for child in children.get(&span.id).into_iter().flatten() {
            print_subtree(child, depth + 1, children, visited);
        }
    }
    let mut visited = std::collections::BTreeSet::new();
    for root in roots {
        if root.parent_id != 0 && root.parent_id != root.id {
            println!("(remote parent span {})", root.parent_id);
        }
        print_subtree(root, 0, &children, &mut visited);
    }
    // Orphans only appear if the tree wiring ever regresses; printing a
    // flat tail beats silently hiding spans the server did retain.
    for span in spans.iter().filter(|s| !visited.contains(&s.id)) {
        println!(
            "{:<28} {:>10.3} ms  span {} (unreachable; parent {})",
            span.name,
            span.elapsed_us as f64 / 1000.0,
            span.id,
            span.parent_id
        );
    }
    Ok(())
}

/// `stats --connect ADDR [--watch N]`: one table row per fleet device —
/// queue depth, breaker state, quarantine, and the live answer-quality
/// plane (observed IST, ESP gap, warmup). With `--watch N` the table
/// redraws every N seconds (in place when stdout is a terminal).
fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    use edm_serve::protocol::{Request, Response};
    use std::io::IsTerminal;

    let addr = text_flag(args, "--connect")?
        .ok_or_else(|| CliError::usage("stats requires --connect ADDR"))?;
    let watch = opt_flag(args, "--watch")?;
    if watch == Some(0) {
        return Err(CliError::usage("--watch must be at least 1 second"));
    }
    let redraw_in_place = watch.is_some() && std::io::stdout().is_terminal();

    let mut client = LineClient::connect(&addr)?;
    loop {
        let devices = match client.exchange(&Request::FleetStats)? {
            Response::FleetStats { devices } => devices,
            other => return Err(CliError::other(format!("unexpected response: {other:?}"))),
        };
        if redraw_in_place {
            // Clear the screen and home the cursor between refreshes.
            print!("\x1b[2J\x1b[H");
        }
        println!(
            "{:<3} {:<18} {:>5} {:>9} {:>6} {:>6} {:>9} {:>9} {:>8}",
            "dev", "name", "depth", "breaker", "quar", "jobs", "live IST", "ESP gap", "factor"
        );
        for d in &devices {
            let breaker = match d.breaker {
                edm_serve::dispatch::BreakerState::Closed => "closed",
                edm_serve::dispatch::BreakerState::HalfOpen => "half-open",
                edm_serve::dispatch::BreakerState::Open => "open",
            };
            let fmt3 = |v: Option<f64>| match v {
                Some(v) => format!("{v:.3}"),
                None => "-".to_string(),
            };
            println!(
                "{:<3} {:<18} {:>5} {:>9} {:>6} {:>6} {:>9} {:>9} {:>8}",
                d.device,
                d.name,
                d.queue_depth,
                breaker,
                if d.quarantined { "yes" } else { "no" },
                d.stats.completed,
                fmt3(d.quality.live_ist),
                fmt3(d.quality.esp_gap),
                if d.quality.warmed_up {
                    format!("{:.2}", d.quality.quality_factor)
                } else {
                    "warmup".to_string()
                },
            );
        }
        match watch {
            None => return Ok(()),
            Some(interval) => std::thread::sleep(std::time::Duration::from_secs(interval)),
        }
    }
}

/// Prints the per-stage timing table `--profile` promises: one row per
/// traced stage (root stages first, nested stages indented beneath them),
/// then the root-stage total against the measured wall time. Root spans
/// never overlap — they all run on the driving thread — so their sum is
/// directly comparable to wall time.
fn print_profile(wall: std::time::Duration) {
    let spans = edm_telemetry::trace::recorder().recent();
    let totals = edm_telemetry::trace::stage_totals(&spans);
    let wall_us = (wall.as_micros() as u64).max(1);
    println!("\nprofile ({} span(s) recorded):", spans.len());
    println!(
        "{:<20} {:>6} {:>12} {:>8}",
        "stage", "calls", "total ms", "% wall"
    );
    let ms = |us: u64| us as f64 / 1000.0;
    let pct = |us: u64| 100.0 * us as f64 / wall_us as f64;
    let mut root_total_us = 0u64;
    for stage in totals.iter().filter(|s| s.root) {
        root_total_us += stage.total_us;
        println!(
            "{:<20} {:>6} {:>12.2} {:>7.1}%",
            stage.name,
            stage.calls,
            ms(stage.total_us),
            pct(stage.total_us)
        );
    }
    for stage in totals.iter().filter(|s| !s.root) {
        println!(
            "  {:<18} {:>6} {:>12.2} {:>7.1}%",
            stage.name,
            stage.calls,
            ms(stage.total_us),
            pct(stage.total_us)
        );
    }
    println!(
        "stages account for {:.2} ms of {:.2} ms wall ({:.1}%)",
        ms(root_total_us),
        ms(wall_us),
        pct(root_total_us)
    );
}

fn cmd_device(args: &[String]) -> Result<(), CliError> {
    let seed = flag(args, "--seed", 42)?;
    let (topology, _) = device_flag(args)?;
    let device = DeviceModel::synthesize(topology, seed);
    let json = persist::device_to_json(&device).map_err(|e| CliError::other(e.to_string()))?;
    println!("{json}");
    Ok(())
}
