//! `edm-cli` — a small command-line front end for the EDM reproduction.
//!
//! ```text
//! edm-cli draw <circuit.qasm>                 render an ASCII diagram
//! edm-cli transpile <circuit.qasm> [--device NAME] [--mapper NAME] [--seed N]
//!                                             map onto a simulated device
//! edm-cli run <circuit.qasm> [--device NAME] [--shots N] [--seed N]
//!                [--threads N] [--profile]    baseline vs EDM vs WEDM
//! edm-cli run <circuit.qasm> --connect ADDR [--shots N] [--seed N]
//!                                             submit to a fleet server
//! edm-cli map (<circuit.qasm> | --bench NAME) [--device NAME] [--mapper NAME]
//!                [--ensemble K] [--seed N]    enumerate a diverse top-K pool
//! edm-cli device [--device NAME] [--seed N]   dump the device model as JSON
//! ```
//!
//! Circuits are OpenQASM 2.0 in the subset `qcir::qasm` understands (the
//! same subset it emits). `--device` takes any `qdevice::presets` name
//! (melbourne14 … eagle127); `--mapper` picks the embedding engine
//! (auto | exhaustive | filtered).

use edm_core::{
    metrics, Backend, Controller, ControllerConfig, ControllerEvent, EdmError, EdmRunner,
    EnsembleConfig, MemberObservation, ProbDist, RunHealth, ShotAllocation,
};
use edm_serve::{exitcode, validate};
use qcir::{draw, qasm, Circuit};
use qdevice::mapper::SearchOutcome;
use qdevice::{persist, presets, DeviceModel, Topology};
use qmap::{MapperSelection, Transpiler};
use qsim::{ideal, NoisySimulator};
use std::process::ExitCode;

/// A command failure carrying the exit code its class maps to.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    /// Exit 2: the command line could not be understood.
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            code: exitcode::USAGE,
            message: message.into(),
        }
    }

    /// Exit 65: an input file exists but is unusable.
    fn data(message: impl Into<String>) -> Self {
        CliError {
            code: exitcode::DATA,
            message: message.into(),
        }
    }

    /// Exit 1: everything else.
    fn other(message: impl Into<String>) -> Self {
        CliError {
            code: exitcode::FAILURE,
            message: message.into(),
        }
    }

    /// Exit 75 for a transient backend failure (rerunning may succeed),
    /// exit 1 for deterministic pipeline errors.
    fn run(e: EdmError) -> Self {
        let code = match &e {
            EdmError::Sim(sim) => exitcode::for_sim_error(sim),
            _ => exitcode::FAILURE,
        };
        CliError {
            code,
            message: e.to_string(),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(exitcode::USAGE);
    };
    let result = match command.as_str() {
        "draw" => cmd_draw(&args[1..]),
        "transpile" => cmd_transpile(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "map" => cmd_map(&args[1..]),
        "device" => cmd_device(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command '{other}'\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}

const USAGE: &str = "usage:
  edm-cli draw <circuit.qasm>
  edm-cli transpile <circuit.qasm> [--device NAME] [--mapper NAME] [--seed N]
  edm-cli run <circuit.qasm> [--device NAME] [--shots N] [--seed N]
             [--threads N] [--profile] [--adaptive-controller] [--rounds N]
  edm-cli run <circuit.qasm> --connect ADDR [--shots N] [--seed N]
  edm-cli map (<circuit.qasm> | --bench NAME) [--device NAME] [--mapper NAME]
             [--ensemble K] [--seed N]
  edm-cli device [--device NAME] [--seed N]

device / mapper options:
  --device NAME preset topology to synthesize (default: melbourne14).
                Presets: melbourne14 guadalupe16 tokyo20 falcon27
                hummingbird65 eagle127
  --mapper NAME embedding engine: auto (exhaustive up to 20 qubits,
                filtered above — the default), exhaustive (full VF2),
                or filtered (budgeted depth-limited FDLS search)

map options:
  --bench NAME  use a registry workload instead of a .qasm file: a Table-1
                name (bv-6, qaoa-5, ...) or a scaling instance
                (qft-N, ghz-N, qaoa-ring-N)
  --ensemble K  pool size to diversify down to (default: 4)

run options:
  --threads N   cap execution worker threads, N >= 1 (default: all cores;
                results are identical for every N — threads only change
                speed). With --connect the server picks its own thread
                count (same validation, same results either way)
  --profile     enable telemetry for this run and print a per-stage timing
                table (calls, total ms, % of wall) after the results
  --connect ADDR
                submit to a running edm-serve/edm-fleet JSON-lines server
                at ADDR (e.g. 127.0.0.1:7878) instead of running locally,
                then poll until the job finishes and print its summary
  --adaptive-controller
                run the shot budget in rounds through the closed-loop
                feedback controller: an enlarged mapping pool is compiled
                once, and between rounds the controller reweights the WEDM
                merge and swaps persistently underperforming members for
                spares; prints per-round health and decisions
  --rounds N    feedback rounds for --adaptive-controller, N >= 2
                (default: 4)

exit codes:
  0   success
  1   unclassified failure
  2   usage error (bad flags / arguments)
  65  data error (missing or unparseable circuit file)
  75  transient backend failure; rerunning may succeed";

fn flag(args: &[String], name: &str, default: u64) -> Result<u64, CliError> {
    opt_flag(args, name).map(|v| v.unwrap_or(default))
}

fn opt_flag(args: &[String], name: &str) -> Result<Option<u64>, CliError> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .map(Some)
            .ok_or_else(|| CliError::usage(format!("{name} expects an integer"))),
        None => Ok(None),
    }
}

fn text_flag(args: &[String], name: &str) -> Result<Option<String>, CliError> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| CliError::usage(format!("{name} expects a value"))),
        None => Ok(None),
    }
}

/// `--device NAME`, defaulting to the paper's IBMQ-14 stand-in.
fn device_flag(args: &[String]) -> Result<(Topology, String), CliError> {
    let name = text_flag(args, "--device")?.unwrap_or_else(|| "melbourne14".into());
    let topology = presets::by_name(&name).ok_or_else(|| {
        CliError::usage(format!(
            "--device: unknown preset '{name}' (expected one of: {})",
            presets::NAMES.join(", ")
        ))
    })?;
    Ok((topology, name))
}

/// `--mapper NAME`, defaulting to size-based auto selection.
fn mapper_flag(args: &[String]) -> Result<MapperSelection, CliError> {
    match text_flag(args, "--mapper")? {
        Some(name) => MapperSelection::parse(&name).ok_or_else(|| {
            CliError::usage(format!(
                "--mapper: unknown engine '{name}' (expected auto, exhaustive, or filtered)"
            ))
        }),
        None => Ok(MapperSelection::Auto),
    }
}

fn load_circuit(args: &[String]) -> Result<Circuit, CliError> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && a.ends_with(".qasm"))
        .ok_or_else(|| CliError::usage("expected a .qasm file argument"))?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError::data(format!("{path}: {e}")))?;
    qasm::parse(&text).map_err(|e| CliError::data(format!("{path}: {e}")))
}

fn cmd_draw(args: &[String]) -> Result<(), CliError> {
    let circuit = load_circuit(args)?;
    print!("{}", draw::draw(&circuit));
    Ok(())
}

fn cmd_transpile(args: &[String]) -> Result<(), CliError> {
    let circuit = load_circuit(args)?;
    let seed = flag(args, "--seed", 42)?;
    let (topology, device_name) = device_flag(args)?;
    let mapper = mapper_flag(args)?;
    let device = DeviceModel::synthesize(topology, seed);
    let cal = device.calibration();
    let out = Transpiler::new(device.topology(), &cal)
        .with_mapper(mapper)
        .transpile(&circuit)
        .map_err(|e| CliError::other(e.to_string()))?;
    println!(
        "device: {device_name} ({} qubits)  mapper: {}",
        device.topology().num_qubits(),
        mapper.describe(device.topology())
    );
    println!("initial layout: {}", out.initial_layout);
    println!("swaps inserted: {}", out.swap_count);
    println!("compile-time ESP: {:.4}", out.esp);
    println!("\n{}", qasm::to_qasm(&out.physical));
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let circuit = load_circuit(args)?;
    let shots = validate::shots(flag(args, "--shots", 16_384)?)
        .map_err(|e| CliError::usage(format!("--shots: {e}")))?;
    let seed = flag(args, "--seed", 42)?;
    // Absent = auto (all cores). Any value gives bit-identical results; the
    // flag exists to bound CPU usage, not to pick an RNG schedule.
    let threads = validate::threads(opt_flag(args, "--threads")?)
        .map_err(|e| CliError::usage(format!("--threads: {e}")))?;
    let profile = args.iter().any(|a| a == "--profile");
    let (topology, _) = device_flag(args)?;
    let mapper = mapper_flag(args)?;
    if circuit.count_measure() == 0 {
        return Err(CliError::data(
            "circuit has no measurements; nothing to run",
        ));
    }
    // --threads was validated above even for remote runs (catch bad values
    // before touching the network); the server picks its own thread count.
    if let Some(addr) = text_flag(args, "--connect")? {
        return cmd_run_remote(&addr, &circuit, shots, seed);
    }
    if args.iter().any(|a| a == "--adaptive-controller") {
        let rounds = flag(args, "--rounds", 4)?;
        if rounds < 2 {
            return Err(CliError::usage("--rounds must be at least 2"));
        }
        return cmd_run_adaptive(&circuit, shots, seed, rounds, threads, topology, mapper);
    }
    if profile {
        edm_telemetry::set_enabled(true);
    }
    let wall_start = std::time::Instant::now();
    let correct = {
        let _span = edm_telemetry::trace::span("ideal_reference");
        ideal::outcome(&circuit).map_err(|e| CliError::other(e.to_string()))?
    };
    let device;
    let cal;
    {
        let _span = edm_telemetry::trace::span("device_setup");
        device = DeviceModel::synthesize(topology, seed);
        cal = device.calibration();
    }
    let transpiler = Transpiler::new(device.topology(), &cal).with_mapper(mapper);
    let backend = NoisySimulator::from_device(&device);
    let mut runner = EdmRunner::new(&transpiler, &backend, EnsembleConfig::default());
    if let Some(threads) = threads {
        runner = runner.with_threads(threads);
    }

    let baseline = runner
        .run_baseline(&circuit, shots, seed)
        .map_err(CliError::run)?;
    let result = runner.run(&circuit, shots, seed).map_err(CliError::run)?;
    let wall = wall_start.elapsed();

    if let RunHealth::Degraded {
        failed_members,
        quorum,
    } = &result.health
    {
        println!(
            "DEGRADED: {} member(s) failed permanently; merged over {} survivor(s) (quorum {})",
            failed_members.len(),
            result.members.len(),
            quorum
        );
    }
    let width = circuit.num_clbits();
    println!(
        "ideal (correct) answer: {}",
        qsim::counts::format_bitstring(correct, width)
    );
    println!(
        "baseline: PST {:.4}  IST {:.3}",
        metrics::pst(&baseline.dist, correct),
        metrics::ist(&baseline.dist, correct)
    );
    println!(
        "EDM:      PST {:.4}  IST {:.3}",
        metrics::pst(&result.edm, correct),
        result.ist_edm(correct)
    );
    println!(
        "WEDM:     PST {:.4}  IST {:.3}",
        metrics::pst(&result.wedm, correct),
        result.ist_wedm(correct)
    );
    for (i, m) in result.members.iter().enumerate() {
        println!(
            "member {i}: qubits {:?}  ESP {:.3}  PST {:.4}",
            m.member.qubits,
            m.member.esp,
            metrics::pst(&m.dist, correct)
        );
    }
    if profile {
        print_profile(wall);
    }
    Ok(())
}

/// `run --adaptive-controller`: the closed-loop local mode. Compiles one
/// enlarged mapping pool (the usual ensemble plus the controller's spare
/// budget), then spends the shot budget in rounds; after each round the
/// controller scores every active member against its predicted ESP share,
/// reweights the WEDM merge, and swaps persistent underperformers for the
/// next-ranked spare. The final answer merges the per-round WEDM
/// distributions weighted by their shot counts.
fn cmd_run_adaptive(
    circuit: &Circuit,
    shots: u64,
    seed: u64,
    rounds: u64,
    threads: Option<usize>,
    topology: Topology,
    mapper: MapperSelection,
) -> Result<(), CliError> {
    let correct = ideal::outcome(circuit).map_err(|e| CliError::other(e.to_string()))?;
    let width = circuit.num_clbits();
    let device = DeviceModel::synthesize(topology, seed);
    let cal = device.calibration();
    let transpiler = Transpiler::new(device.topology(), &cal).with_mapper(mapper);
    let backend = NoisySimulator::from_device(&device);
    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });

    let base = EnsembleConfig::default();
    let controller_config = ControllerConfig::default();
    let pool_config = EnsembleConfig {
        size: base.size + controller_config.spares,
        ..base
    };
    let pool =
        edm_core::build_ensemble(&transpiler, circuit, &pool_config).map_err(CliError::run)?;
    let footprints: Vec<Vec<u32>> = pool.iter().map(|m| m.qubits.clone()).collect();
    let active_len = base.size.min(pool.len());
    let mut controller = Controller::new(controller_config, pool.len(), active_len);

    let round_shots = shots / rounds;
    if round_shots < active_len as u64 {
        return Err(CliError::usage(format!(
            "--shots {shots} over {rounds} rounds leaves fewer shots per round than the \
             {active_len} ensemble members"
        )));
    }
    let threshold = base
        .uniformity_filter
        .unwrap_or(edm_core::filter::DEFAULT_RSD_THRESHOLD);

    println!(
        "ideal (correct) answer: {}",
        qsim::counts::format_bitstring(correct, width)
    );
    println!(
        "pool: {} mapping(s) ({} active + {} spare(s)), {} round(s) of {} shot(s)",
        pool.len(),
        active_len,
        pool.len() - active_len,
        rounds,
        round_shots
    );

    let mut round_dists: Vec<ProbDist> = Vec::new();
    let mut round_masses: Vec<f64> = Vec::new();
    for round in 0..rounds {
        for event in controller.maintain(&footprints, None) {
            if let ControllerEvent::Swap {
                slot,
                out_member,
                in_member,
                reason,
                ..
            } = event
            {
                println!("round {round}: swap slot {slot}: member {out_member} -> {in_member} ({reason:?})");
            }
        }
        let members: Vec<edm_core::EnsembleMember> = controller
            .active()
            .iter()
            .map(|&i| pool[i].clone())
            .collect();
        let planned = members.len();
        // Each round forks its own seed, so rounds are independent trials
        // and the whole run stays reproducible from the one CLI seed.
        let plan = plan_round(members, round_shots, qsim::rngstream::fork(seed, round))?;
        let raw = backend.execute_batch(&plan.jobs(), threads);
        let mut result =
            edm_core::assemble_result(plan.members, raw, &base).map_err(CliError::run)?;

        let failed: std::collections::BTreeMap<usize, f64> = match &result.health {
            RunHealth::Degraded { failed_members, .. } => failed_members
                .iter()
                .map(|f| (f.index, f.member.esp))
                .collect(),
            RunHealth::Full => Default::default(),
        };
        let mut observations = Vec::with_capacity(planned);
        let mut survivors = result.members.iter().zip(&result.weights);
        for slot in 0..planned {
            if let Some(&esp) = failed.get(&slot) {
                observations.push(MemberObservation {
                    esp,
                    informative: false,
                    realized_weight: 0.0,
                    failed: true,
                });
            } else if let Some((run, &weight)) = survivors.next() {
                observations.push(MemberObservation {
                    esp: run.member.esp,
                    informative: edm_core::filter::is_informative(&run.dist, threshold),
                    realized_weight: weight,
                    failed: false,
                });
            }
        }
        if observations.len() == planned {
            let assessment = controller.observe(&observations);
            if assessment.reweighted {
                // Slot weights map onto survivors in plan order; renormalize
                // over the survivors actually merged.
                let adjusted: Vec<f64> = (0..planned)
                    .filter(|slot| !failed.contains_key(slot))
                    .map(|slot| assessment.weights[slot])
                    .collect();
                let total: f64 = adjusted.iter().sum();
                if adjusted.len() == result.members.len() && total.is_finite() && total > 0.0 {
                    let adjusted: Vec<f64> = adjusted.iter().map(|w| w / total).collect();
                    let dists: Vec<ProbDist> =
                        result.members.iter().map(|m| m.dist.clone()).collect();
                    result.wedm = ProbDist::merge_weighted(&dists, &adjusted);
                    result.weights = adjusted;
                }
            }
        }

        let health: Vec<String> = controller
            .health()
            .iter()
            .map(|h| format!("{h:.2}"))
            .collect();
        println!(
            "round {round}: WEDM PST {:.4}  health [{}]",
            metrics::pst(&result.wedm, correct),
            health.join(" ")
        );
        round_masses.push(result.members.iter().map(|m| m.counts.shots() as f64).sum());
        round_dists.push(result.wedm);
    }

    let final_wedm = ProbDist::merge_weighted(&round_dists, &round_masses);
    println!(
        "adaptive WEDM: PST {:.4}  IST {:.3}",
        metrics::pst(&final_wedm, correct),
        metrics::ist(&final_wedm, correct)
    );
    println!(
        "controller: {} swap(s), {} reweight(s) over {} round(s)",
        controller.swaps(),
        controller.reweights(),
        controller.runs()
    );
    Ok(())
}

/// Plans one adaptive round, mapping config errors to usage exits.
fn plan_round(
    members: Vec<edm_core::EnsembleMember>,
    shots: u64,
    seed: u64,
) -> Result<edm_core::RunPlan, CliError> {
    edm_core::plan_run(members, shots, seed, ShotAllocation::Uniform).map_err(CliError::run)
}

/// `map`: transpiles a workload onto the chosen preset and prints the
/// diversified top-K mapping pool — the EDM ensemble before any shots are
/// spent. This is the command the CI mapping smoke test drives: it proves
/// the selected engine can produce a ranked, diverse pool on the large
/// heavy-hex presets within its budget.
fn cmd_map(args: &[String]) -> Result<(), CliError> {
    let circuit = match text_flag(args, "--bench")? {
        Some(name) => qbench::registry::by_name(&name)
            .map(|b| b.circuit)
            .or_else(|| qbench::registry::scaling_by_name(&name))
            .ok_or_else(|| {
                CliError::usage(format!(
                    "--bench: unknown workload '{name}' (Table-1 name or qft-N / ghz-N / qaoa-ring-N)"
                ))
            })?,
        None => load_circuit(args)?,
    };
    let seed = flag(args, "--seed", 42)?;
    let size = flag(args, "--ensemble", 4)? as usize;
    let (topology, device_name) = device_flag(args)?;
    let mapper = mapper_flag(args)?;
    let device = DeviceModel::synthesize(topology, seed);
    let cal = device.calibration();
    let transpiler = Transpiler::new(device.topology(), &cal).with_mapper(mapper);

    let out = transpiler
        .transpile(&circuit)
        .map_err(|e| CliError::other(e.to_string()))?;
    let config = EnsembleConfig {
        size,
        // Keep every candidate the engine can reach: `map` reports the
        // pool itself, so the §3.2 ESP cutoff would only hide members.
        min_esp_ratio: 0.0,
        ..EnsembleConfig::default()
    };
    let (members, outcome) =
        edm_core::diversify_detailed(&transpiler, &out.physical, &config).map_err(CliError::run)?;

    println!(
        "device: {device_name} ({} qubits)  mapper: {}",
        device.topology().num_qubits(),
        mapper.describe(device.topology())
    );
    println!(
        "circuit: {} logical qubits, {} swaps inserted, baseline ESP {:.4}",
        circuit.num_qubits(),
        out.swap_count,
        out.esp
    );
    match outcome {
        SearchOutcome::Complete => println!("search: complete"),
        SearchOutcome::Truncated { explored } => {
            println!("search: truncated (budget hit after {explored} node expansions)");
        }
    }
    for (i, m) in members.iter().enumerate() {
        println!("member {i}: qubits {:?}  ESP {:.4}", m.qubits, m.esp);
    }
    Ok(())
}

/// `run --connect`: submits the circuit to a JSON-lines server (an
/// `edm-fleet` front end or a line-oriented `edm-serve` peer), polls the
/// returned id until the job reaches a terminal state, and prints the
/// summary. Connection problems exit 75 (transient — the server may just
/// not be up yet); a server-side rejection or job failure exits 65.
fn cmd_run_remote(addr: &str, circuit: &Circuit, shots: u64, seed: u64) -> Result<(), CliError> {
    use edm_serve::protocol::{Request, Response};
    use std::io::{BufRead, BufReader, Write};

    let transient = |message: String| CliError {
        code: exitcode::TRANSIENT,
        message,
    };
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| transient(format!("cannot connect to {addr}: {e}")))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| transient(format!("{addr}: {e}")))?,
    );
    let mut writer = stream;
    let mut exchange = |request: &Request| -> Result<Response, CliError> {
        let line = serde_json::to_string(request)
            .map_err(|e| CliError::other(format!("encode request: {e}")))?;
        writeln!(writer, "{line}").map_err(|e| transient(format!("{addr}: write: {e}")))?;
        let mut response = String::new();
        match reader.read_line(&mut response) {
            Ok(0) => Err(transient(format!("{addr}: server closed the connection"))),
            Ok(_) => serde_json::from_str(&response)
                .map_err(|e| CliError::other(format!("{addr}: bad response: {e}"))),
            Err(e) => Err(transient(format!("{addr}: read: {e}"))),
        }
    };

    let id = match exchange(&Request::Submit {
        qasm: qasm::to_qasm(circuit),
        shots,
        seed,
        priority: edm_serve::queue::Priority::Normal,
    })? {
        Response::Accepted { id, trace_id } => {
            println!("accepted: id {id}  trace {trace_id:#018x}");
            id
        }
        Response::Rejected { reason } => {
            return Err(CliError::data(format!("server rejected the job: {reason}")))
        }
        other => return Err(CliError::other(format!("unexpected response: {other:?}"))),
    };

    loop {
        match exchange(&Request::Poll { id })? {
            Response::Queued { .. } => std::thread::sleep(std::time::Duration::from_millis(20)),
            Response::Finished { summary, .. } => {
                println!(
                    "finished: {} member(s), {} shot(s), {} ms",
                    summary.members, summary.shots, summary.latency_ms
                );
                if summary.degraded {
                    println!(
                        "DEGRADED: {} member(s) failed permanently",
                        summary.failed_members
                    );
                }
                println!(
                    "top outcome: {}  p = {:.4}",
                    summary.top_outcome, summary.top_probability
                );
                // Surface adaptive-controller activity without making the
                // user scrape Prometheus; servers without the controller
                // report zeros and print nothing.
                if let Ok(Response::Stats { stats }) = exchange(&Request::Stats) {
                    if stats.controller_swaps > 0
                        || stats.controller_reweights > 0
                        || stats.controller_recompiles > 0
                    {
                        println!(
                            "controller: {} swap(s), {} reweight(s), {} recompile(s)",
                            stats.controller_swaps,
                            stats.controller_reweights,
                            stats.controller_recompiles
                        );
                    }
                }
                return Ok(());
            }
            Response::Failed { reason, .. } => {
                return Err(CliError::data(format!(
                    "job failed on the server: {reason}"
                )))
            }
            other => return Err(CliError::other(format!("unexpected response: {other:?}"))),
        }
    }
}

/// Prints the per-stage timing table `--profile` promises: one row per
/// traced stage (root stages first, nested stages indented beneath them),
/// then the root-stage total against the measured wall time. Root spans
/// never overlap — they all run on the driving thread — so their sum is
/// directly comparable to wall time.
fn print_profile(wall: std::time::Duration) {
    let spans = edm_telemetry::trace::recorder().recent();
    let totals = edm_telemetry::trace::stage_totals(&spans);
    let wall_us = (wall.as_micros() as u64).max(1);
    println!("\nprofile ({} span(s) recorded):", spans.len());
    println!(
        "{:<20} {:>6} {:>12} {:>8}",
        "stage", "calls", "total ms", "% wall"
    );
    let ms = |us: u64| us as f64 / 1000.0;
    let pct = |us: u64| 100.0 * us as f64 / wall_us as f64;
    let mut root_total_us = 0u64;
    for stage in totals.iter().filter(|s| s.root) {
        root_total_us += stage.total_us;
        println!(
            "{:<20} {:>6} {:>12.2} {:>7.1}%",
            stage.name,
            stage.calls,
            ms(stage.total_us),
            pct(stage.total_us)
        );
    }
    for stage in totals.iter().filter(|s| !s.root) {
        println!(
            "  {:<18} {:>6} {:>12.2} {:>7.1}%",
            stage.name,
            stage.calls,
            ms(stage.total_us),
            pct(stage.total_us)
        );
    }
    println!(
        "stages account for {:.2} ms of {:.2} ms wall ({:.1}%)",
        ms(root_total_us),
        ms(wall_us),
        pct(root_total_us)
    );
}

fn cmd_device(args: &[String]) -> Result<(), CliError> {
    let seed = flag(args, "--seed", 42)?;
    let (topology, _) = device_flag(args)?;
    let device = DeviceModel::synthesize(topology, seed);
    let json = persist::device_to_json(&device).map_err(|e| CliError::other(e.to_string()))?;
    println!("{json}");
    Ok(())
}
