//! # edm-repro — Ensemble of Diverse Mappings, reproduced in Rust
//!
//! Facade crate re-exporting the full reproduction stack of *"Ensemble of
//! Diverse Mappings: Improving Reliability of Quantum Computers by
//! Orchestrating Dissimilar Mistakes"* (Tannu & Qureshi, MICRO 2019):
//!
//! - [`qcir`] — circuit IR
//! - [`qdevice`] — device topologies, calibration, VF2 subgraph isomorphism
//! - [`qsim`] — noisy state-vector simulator with correlated error channels
//! - [`qmap`] — variation-aware placement and A* SWAP routing
//! - [`edm_core`] — the EDM/WEDM ensemble machinery and metrics
//! - [`qbench`] — the paper's benchmark circuits
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run: build a
//! Bernstein-Vazirani circuit, map it onto a simulated IBMQ-14 device, run an
//! ensemble of four diverse mappings, and compare the Inference Strength of
//! EDM against the single best mapping.

pub use edm_core;
pub use qbench;
pub use qcir;
pub use qdevice;
pub use qmap;
pub use qsim;
