//! The full toolbox on one workload: adaptive EDM (pilot-prune-reallocate)
//! stacked with readout-error unfolding and bootstrap confidence intervals,
//! on a heavy-hex (guadalupe-16) device rather than melbourne.
//!
//! ```sh
//! cargo run --release --example advanced_pipeline
//! ```

use edm_core::analysis;
use edm_core::mitigate::{unfold, ReadoutConfusion};
use edm_core::{metrics, EdmRunner, EnsembleConfig, ProbDist};
use qbench::bv;
use qdevice::{presets, DeviceModel};
use qmap::{RouterBackend, Transpiler};
use qsim::NoisySimulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key = 0b10110u64;
    let circuit = bv::bv(key, 5);

    // A heavy-hex device: EDM is not melbourne-specific.
    let device = DeviceModel::synthesize(presets::guadalupe16(), 8);
    let cal = device.calibration();
    let transpiler = Transpiler::new(device.topology(), &cal).with_router(RouterBackend::Lookahead);
    let backend = NoisySimulator::from_device(&device);
    let runner = EdmRunner::new(&transpiler, &backend, EnsembleConfig::default());

    // 1. Adaptive schedule: 25% pilot, prune noise-drowned members.
    let adaptive = runner.run_adaptive(&circuit, 16_384, 0.25, 1.0, 5)?;
    println!(
        "adaptive run: {} members survived, {} pruned, {} pilot shots",
        adaptive.result.members.len(),
        adaptive.pruned.len(),
        adaptive.pilot_shots
    );
    println!(
        "EDM merge: PST {:.3}, IST {:.3}",
        metrics::pst(&adaptive.result.edm, key),
        adaptive.result.ist_edm(key)
    );

    // 2. Stack readout unfolding per member, then re-merge.
    let mitigated: Vec<ProbDist> = adaptive
        .result
        .members
        .iter()
        .map(|m| {
            let confusion = ReadoutConfusion::for_circuit(&m.member.physical, device.truth());
            unfold(&m.dist, &confusion)
        })
        .collect();
    let merged = ProbDist::merge_uniform(&mitigated);
    println!(
        "after readout unfolding: PST {:.3}, IST {:.3}",
        metrics::pst(&merged, key),
        metrics::ist(&merged, key)
    );

    // 3. Statistical confidence: bootstrap the IST of the pooled counts.
    let mut pooled = qsim::Counts::new(circuit.num_clbits());
    for m in &adaptive.result.members {
        for (k, n) in m.counts.iter() {
            for _ in 0..n {
                pooled.record(k);
            }
        }
    }
    let ci = analysis::ist_confidence(&pooled, key, 300, 0.05, 11);
    println!(
        "pooled IST = {:.3}, 95% bootstrap CI [{:.3}, {:.3}]{}",
        ci.estimate,
        ci.lo,
        ci.hi,
        if ci.confidently_above_one() {
            "  -> answer inferable with confidence"
        } else {
            ""
        }
    );

    // 4. Where do the residual errors live?
    let spectrum = analysis::error_spectrum(&merged, key);
    println!(
        "error spectrum by Hamming distance from the key: {:?}",
        spectrum
            .mass
            .iter()
            .map(|p| (p * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!(
        "readout-bias indicator (0.5 = unbiased): {:.3}",
        spectrum.bias_toward_zero()
    );
    Ok(())
}
