//! Characterizing correlated errors (the paper's §3 and Appendix A):
//! repeated runs of one mapping produce near-identical output distributions
//! while diverse mappings diverge, and the buckets-and-balls model shows how
//! correlation raises the PST needed to infer the correct answer.
//!
//! ```sh
//! cargo run --release --example correlated_errors
//! ```

use edm_core::dist::symmetric_kl;
use edm_core::model::{pst_frontier, BucketModel, Demon};
use edm_core::{build_ensemble, EnsembleConfig, ProbDist};
use qbench::bv;
use qdevice::{presets, DeviceModel};
use qmap::Transpiler;
use qsim::NoisySimulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = bv::bv(0b110011, 6);
    let device = DeviceModel::synthesize(presets::melbourne14(), 102);
    let cal = device.calibration();
    let transpiler = Transpiler::new(device.topology(), &cal);
    let sim = NoisySimulator::from_device(&device);

    let members = build_ensemble(&transpiler, &circuit, &EnsembleConfig::default())?;

    // Same mapping, four independent runs: only shot noise differs.
    let same: Vec<ProbDist> = (0..4)
        .map(|r| {
            let counts = sim.run(&members[0].physical, 8192, 100 + r).expect("runs");
            ProbDist::from_counts(&counts)
        })
        .collect();
    // Four diverse mappings.
    let diverse: Vec<ProbDist> = members
        .iter()
        .map(|m| {
            let counts = sim.run(&m.physical, 8192, 200).expect("runs");
            ProbDist::from_counts(&counts)
        })
        .collect();

    let avg = |ds: &[ProbDist]| -> f64 {
        let mut sum = 0.0;
        let mut n = 0;
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                sum += symmetric_kl(&ds[i], &ds[j]);
                n += 1;
            }
        }
        sum / n as f64
    };
    println!("average pairwise divergence (symmetric KL):");
    println!("  same mapping, repeated runs: {:.3}", avg(&same));
    println!("  four diverse mappings:       {:.3}", avg(&diverse));
    println!("identical mappings repeat the same mistakes; diverse mappings do not.\n");

    // Appendix A: how much correlation hurts inference.
    println!("buckets-and-balls model, M = 64 outcomes, N = 8192 trials:");
    for (label, demon) in [
        ("uncorrelated", None),
        (
            "weak demon (Qcor = 10%)",
            Some(Demon {
                num_hot: 6,
                q_cor: 0.10,
            }),
        ),
        (
            "strong demon (Qcor = 50%)",
            Some(Demon {
                num_hot: 6,
                q_cor: 0.50,
            }),
        ),
    ] {
        let frontier = pst_frontier(64, demon, 8192, 7, 0.002, 1);
        println!("  {label}: PST frontier = {:.1}%", 100.0 * frontier);
    }
    println!("\nIST at PST = 5% under each model (median of 9 simulations):");
    for (label, model) in [
        ("uncorrelated", BucketModel::uncorrelated(64, 0.05)),
        ("Qcor = 10%", BucketModel::correlated(64, 0.05, 6, 0.10)),
        ("Qcor = 50%", BucketModel::correlated(64, 0.05, 6, 0.50)),
    ] {
        println!("  {label}: IST = {:.2}", model.median_ist(8192, 9, 3));
    }
    Ok(())
}
