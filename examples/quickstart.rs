//! Quickstart: run Bernstein-Vazirani on a simulated IBMQ-14 with the
//! single best mapping vs an Ensemble of Diverse Mappings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use edm_core::{metrics, EdmRunner, EnsembleConfig};
use qbench::bv;
use qdevice::{presets, DeviceModel};
use qmap::Transpiler;
use qsim::NoisySimulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 6-bit Bernstein-Vazirani circuit; the ideal machine returns the
    //    hidden key with probability 1.
    let key = 0b110011;
    let circuit = bv::bv(key, 6);
    println!("BV-6 with hidden key 110011: {} ops", circuit.len());

    // 2. A synthetic 14-qubit device with correlated error channels.
    let device = DeviceModel::synthesize(presets::melbourne14(), 42);
    let cal = device.calibration();
    println!(
        "device: mean readout err {:.1}%, mean CX err {:.1}%, CX link spread {:.1}x",
        100.0 * cal.mean_readout_err(),
        100.0 * cal.mean_cx_err(),
        cal.cx_err_spread()
    );

    // 3. Variation-aware transpilation + the EDM runner.
    let transpiler = Transpiler::new(device.topology(), &cal);
    let backend = NoisySimulator::from_device(&device);
    let runner = EdmRunner::new(&transpiler, &backend, EnsembleConfig::default());

    // 4. Baseline: all 16384 trials on the single best mapping.
    let baseline = runner.run_baseline(&circuit, 16_384, 1)?;
    println!(
        "\nbaseline (best mapping, ESP {:.3}): PST {:.3}, IST {:.3}",
        baseline.member.esp,
        metrics::pst(&baseline.dist, key),
        metrics::ist(&baseline.dist, key)
    );

    // 5. EDM: the same trial budget split across 4 diverse mappings.
    let result = runner.run(&circuit, 16_384, 1)?;
    for (i, m) in result.members.iter().enumerate() {
        println!(
            "member {i}: qubits {:?}, ESP {:.3}, PST {:.3}",
            m.member.qubits,
            m.member.esp,
            metrics::pst(&m.dist, key)
        );
    }
    println!(
        "\nEDM merged:  PST {:.3}, IST {:.3}",
        metrics::pst(&result.edm, key),
        result.ist_edm(key)
    );
    println!(
        "WEDM merged: PST {:.3}, IST {:.3} (weights {:?})",
        metrics::pst(&result.wedm, key),
        result.ist_wedm(key),
        result
            .weights
            .iter()
            .map(|w| (w * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "\ninference: baseline {}, EDM {}",
        verdict(metrics::ist(&baseline.dist, key)),
        verdict(result.ist_edm(key))
    );
    Ok(())
}

fn verdict(ist: f64) -> &'static str {
    if ist > 1.0 {
        "recovers the key (IST > 1)"
    } else {
        "masked by a wrong answer (IST < 1)"
    }
}
