//! QAOA max-cut on a simulated NISQ device: solve a 6-node ring with p=1
//! QAOA, then use EDM to sharpen the inference of the best cut.
//!
//! ```sh
//! cargo run --release --example qaoa_maxcut
//! ```

use edm_core::{metrics, EdmRunner, EnsembleConfig};
use qbench::qaoa;
use qdevice::{presets, DeviceModel};
use qmap::Transpiler;
use qsim::counts::format_bitstring;
use qsim::NoisySimulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 6u32;
    let edges = qaoa::ring_edges(n);
    let circuit = qaoa::tuned_ring(n);
    let target = qaoa::alternating_cut(n);
    let best_cut = qaoa::cut_value(target, &edges);
    println!(
        "max-cut on a {n}-node ring: optimal cut {} cuts {best_cut} edges",
        format_bitstring(target, n)
    );

    // Ideal QAOA concentrates on the optimal cuts.
    let ideal = qsim::ideal::probabilities(&circuit)?;
    let p_opt: f64 = ideal
        .iter()
        .filter(|&(&k, _)| qaoa::cut_value(k, &edges) == best_cut)
        .map(|(_, &p)| p)
        .sum();
    println!(
        "ideal machine: optimal cuts carry {:.1}% of the output",
        100.0 * p_opt
    );

    let device = DeviceModel::synthesize(presets::melbourne14(), 11);
    let cal = device.calibration();
    let transpiler = Transpiler::new(device.topology(), &cal);
    let backend = NoisySimulator::from_device(&device);
    let runner = EdmRunner::new(&transpiler, &backend, EnsembleConfig::default());

    let baseline = runner.run_baseline(&circuit, 16_384, 3)?;
    let result = runner.run(&circuit, 16_384, 3)?;

    println!("\ntop outcomes under the EDM merge:");
    for (k, p) in result.edm.sorted_descending().into_iter().take(6) {
        println!(
            "  {}  p={:.3}  cuts {} edges{}",
            format_bitstring(k, n),
            p,
            qaoa::cut_value(k, &edges),
            if k == target {
                "  <- designated answer"
            } else {
                ""
            }
        );
    }

    // Expected cut value (the QAOA objective) under each policy.
    let expect = |dist: &edm_core::ProbDist| -> f64 {
        dist.iter()
            .map(|(k, p)| p * qaoa::cut_value(k, &edges) as f64)
            .sum()
    };
    println!(
        "\nexpected cut value: baseline {:.3}, EDM {:.3} (ideal optimum {best_cut})",
        expect(&baseline.dist),
        expect(&result.edm)
    );
    println!(
        "IST for the designated cut: baseline {:.3}, EDM {:.3}, WEDM {:.3}",
        metrics::ist(&baseline.dist, target),
        result.ist_edm(target),
        result.ist_wedm(target)
    );
    Ok(())
}
