//! Anatomy of an ensemble: which physical qubits each member uses, which
//! wrong answers dominate each member, and how the merge suppresses them.
//!
//! ```sh
//! cargo run --release --example bv_ensemble
//! ```

use edm_core::dist::symmetric_kl;
use edm_core::{metrics, EdmRunner, EnsembleConfig};
use qbench::bv;
use qdevice::{presets, DeviceModel, SynthesisProfile};
use qmap::Transpiler;
use qsim::counts::format_bitstring;
use qsim::NoisySimulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key = 0b110011u64;
    let circuit = bv::bv(key, 6);

    // Strong correlated channels make the failure mode visible.
    let profile = SynthesisProfile {
        coherent_max_angle: 0.9,
        crosstalk_max_angle: 0.45,
        ..SynthesisProfile::default()
    };
    let device = DeviceModel::synthesize_with(presets::melbourne14(), &profile, 102);
    let cal = device.calibration();
    let transpiler = Transpiler::new(device.topology(), &cal);
    let backend = NoisySimulator::from_device(&device);
    let runner = EdmRunner::new(&transpiler, &backend, EnsembleConfig::default());

    let result = runner.run(&circuit, 16_384, 5)?;

    println!("correct answer: {}", format_bitstring(key, 6));
    for (i, m) in result.members.iter().enumerate() {
        let (wrong, p_wrong) = m
            .dist
            .strongest_wrong(key)
            .expect("noisy runs observe wrong answers");
        println!(
            "\nmember {i} (ESP {:.3}) on qubits {:?}",
            m.member.esp, m.member.qubits
        );
        println!(
            "  PST {:.3}  IST {:.3}  dominant wrong answer {} at {:.3}",
            metrics::pst(&m.dist, key),
            metrics::ist(&m.dist, key),
            format_bitstring(wrong, 6),
            p_wrong
        );
    }

    println!("\npairwise output divergence (symmetric KL):");
    for i in 0..result.members.len() {
        for j in (i + 1)..result.members.len() {
            println!(
                "  member {i} vs {j}: {:.3}",
                symmetric_kl(&result.members[i].dist, &result.members[j].dist)
            );
        }
    }

    let (wrong, p_wrong) = result
        .edm
        .strongest_wrong(key)
        .expect("wrong answers exist");
    println!("\nEDM merge:");
    println!(
        "  PST {:.3}  IST {:.3}  strongest surviving wrong answer {} at {:.3}",
        metrics::pst(&result.edm, key),
        result.ist_edm(key),
        format_bitstring(wrong, 6),
        p_wrong
    );
    println!(
        "WEDM merge: PST {:.3}  IST {:.3}",
        metrics::pst(&result.wedm, key),
        result.ist_wedm(key)
    );
    println!(
        "\neach member's dominant mistake is different, so the merge attenuates\n\
         them by ~1/K while the correct answer, present everywhere, survives."
    );
    Ok(())
}
